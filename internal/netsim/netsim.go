// Package netsim is the packet-level network simulator that replaces NS-3 in
// this reproduction of DDoShield-IoT. It models nodes with NICs, full-duplex
// links with finite bandwidth, propagation delay and drop-tail queues, and a
// learning Ethernet switch (the CSMA-segment analog the paper's topology
// uses to join the Devs, the Attacker, the TServer and the IDS).
//
// All state advances on a single sim.Scheduler — or, when the network is
// built with NewPartitioned, on one scheduler per PDES domain with
// cross-domain frames carried as conservative lookahead messages. Either
// way the simulation is deterministic for a fixed seed and topology.
package netsim

import (
	"cmp"
	"fmt"
	"slices"
	"strconv"
	"sync"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/trace"
)

// Port is anything that can terminate a link: a host NIC or a switch port.
type Port interface {
	// receive is invoked by the link when a frame finishes arriving; tc is
	// the frame's trace context (zero for unsampled frames).
	receive(raw []byte, tc trace.Context)
	// scheduler is the event queue the port's owner executes on (the
	// domain scheduler in partitioned networks, the global one otherwise).
	scheduler() *sim.Scheduler
	// domain is the owner's PDES domain (nil in serial networks).
	domain() *sim.Domain
	// String identifies the port for diagnostics.
	String() string
}

// Tap observes frames on a link. Taps run at frame-delivery time with the
// simulated timestamp, exactly like a passive capture interface. The pcap
// writer and the IDS monitor are both taps.
type Tap func(t sim.Time, raw []byte)

// TapCtx is a Tap that also sees the frame's trace context, so observers
// (the IDS) can extend a sampled packet's causal chain.
type TapCtx func(t sim.Time, raw []byte, tc trace.Context)

// Network owns the simulated topology: the scheduler, every node, link and
// switch, and the MAC address allocator.
type Network struct {
	sched    *sim.Scheduler
	engine   *sim.Engine // nil for serial networks
	nodes    []*Node
	links    []*Link
	switches []*Switch
	macSeq   uint64
	// linkSeq allocates link creation indices. It runs ahead of len(links)
	// while stages hold reserved ranges; outside staged construction the two
	// always agree.
	linkSeq int
	nameSet map[string]bool
	// arrQs holds one delivery-normalization queue per scheduler frames
	// can land on (one total for serial networks, one per domain when
	// partitioned). See arrivalQueue.
	arrQs map[*sim.Scheduler]*arrivalQueue

	// reg/rec are the attached telemetry plane (both may be nil: every
	// instrument works standalone and Recorder.Emit is nil-safe).
	reg *telemetry.Registry
	rec *telemetry.Recorder
	// tracer drives causal packet tracing; nil (or a zero sample rate)
	// keeps every frame on the zero-Context fast path.
	tracer *trace.Tracer

	// seed roots the per-entity RNG streams (per-link, per-direction loss
	// draws) derived at Connect time for configs that do not supply their
	// own RNG. See SetSeed.
	seed int64

	// metricLimit caps how many entities (NICs, links, switches) register
	// per-entity metric series; 0 is unlimited. metricEntities counts the
	// ones that did. See SetMetricEntityLimit.
	metricLimit    int
	metricEntities int
}

// New creates an empty network driven by sched.
func New(sched *sim.Scheduler) *Network {
	return &Network{sched: sched, nameSet: make(map[string]bool)}
}

// NewPartitioned creates an empty network driven by a conservative PDES
// engine. Nodes and switches are placed with NewNodeInDomain /
// NewSwitchInDomain; everything defaults to domain 0. After wiring the
// topology, derive the engine lookahead from MinCrossDomainDelay.
func NewPartitioned(e *sim.Engine) *Network {
	return &Network{sched: e.Domain(0).Scheduler(), engine: e, nameSet: make(map[string]bool)}
}

// Engine exposes the PDES engine driving a partitioned network (nil for
// serial networks built with New).
func (n *Network) Engine() *sim.Engine { return n.engine }

// SetSeed roots the network's derived RNG streams. Links created after the
// call whose LinkConfig enables random loss without supplying an RNG draw
// from streams keyed by (seed, link index, direction) — independent of
// global event interleaving, so the same topology produces the same loss
// pattern under the serial scheduler and the partitioned engine alike.
func (n *Network) SetSeed(seed int64) { n.seed = seed }

// Scheduler exposes the simulation scheduler driving this network. In a
// partitioned network this is domain 0's scheduler (the reference clock);
// per-object scheduling must use the owning node's or switch's scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Now reports the current simulated time (domain 0's clock when
// partitioned).
func (n *Network) Now() sim.Time { return n.sched.Now() }

// domainFor maps a domain index to the engine's domain, clamping out-of-
// range indices; serial networks always yield (nil, n.sched).
func (n *Network) domainFor(idx int) (*sim.Domain, *sim.Scheduler) {
	if n.engine == nil {
		return nil, n.sched
	}
	if idx < 0 || idx >= n.engine.NumDomains() {
		idx = 0
	}
	d := n.engine.Domain(idx)
	return d, d.Scheduler()
}

// MinCrossDomainDelay reports the smallest propagation delay over links
// whose endpoints live in different domains — the conservative lookahead
// bound. ok is false when no link crosses a domain boundary (then any
// positive lookahead is safe).
func (n *Network) MinCrossDomainDelay() (sim.Time, bool) {
	var min sim.Time
	found := false
	for _, l := range n.links {
		d := &l.dirs[0]
		if d.fromDom != nil && d.fromDom != d.toDom {
			if !found || l.cfg.Delay < min {
				min = l.cfg.Delay
				found = true
			}
		}
	}
	return min, found
}

// SetTelemetry attaches a metrics registry and flight recorder. Every
// existing NIC, link and switch registers its counters immediately;
// topology created afterwards registers at creation. The counters are the
// same ones Stats()/Counters() read — the registry observes them by
// reference, so exports and the legacy accessors can never disagree.
// Either argument may be nil.
func (n *Network) SetTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder) {
	n.reg = reg
	n.rec = rec
	for _, node := range n.nodes {
		for _, nic := range node.nics {
			n.registerNIC(nic)
		}
	}
	for _, l := range n.links {
		n.registerLink(l)
	}
	for _, s := range n.switches {
		n.registerSwitch(s)
	}
}

// Recorder exposes the attached flight recorder (nil when unattached);
// higher layers (netstack, container) emit through it.
func (n *Network) Recorder() *telemetry.Recorder { return n.rec }

// Registry exposes the attached metrics registry (nil when unattached).
func (n *Network) Registry() *telemetry.Registry { return n.reg }

// SetTracer attaches (or, with nil, detaches) the causal packet tracer.
// Origin points — the netstack send paths and the botnet flood engines —
// read it through Tracer() at send time.
func (n *Network) SetTracer(tr *trace.Tracer) { n.tracer = tr }

// Tracer exposes the attached packet tracer (nil when tracing is off; the
// trace API is nil-receiver safe, so callers use the result directly).
func (n *Network) Tracer() *trace.Tracer { return n.tracer }

// SetMetricEntityLimit caps per-entity metric registration: only the
// first limit entities (NICs, links and switches combined, in creation
// order) publish their counters into the registry; later ones still
// count — Stats()/Counters() read the same fields — but stay out of the
// snapshot. Fleet-scale topologies use this so metric cardinality does
// not grow with the device count. Creation order is a pure function of
// the topology, never of the execution mode, so which entities register
// is deterministic and identical across Domains settings. 0 (the
// default) is unlimited. Must be set before entities are created or
// SetTelemetry is called.
func (n *Network) SetMetricEntityLimit(limit int) { n.metricLimit = limit }

// Links returns every link in creation order — the deterministic
// enumeration the profiler's per-entity attribution walks.
func (n *Network) Links() []*Link {
	out := make([]*Link, len(n.links))
	copy(out, n.links)
	return out
}

// Grow pre-sizes the topology containers for a build of known shape, so
// fleet-scale construction does not pay repeated slice growth and map
// rehashing. Zero or negative hints are ignored.
func (n *Network) Grow(nodes, links, switches int) {
	if nodes > 0 {
		n.nodes = slices.Grow(n.nodes, nodes)
		bigger := make(map[string]bool, len(n.nameSet)+nodes)
		for k, v := range n.nameSet {
			bigger[k] = v
		}
		n.nameSet = bigger
	}
	if links > 0 {
		n.links = slices.Grow(n.links, links)
	}
	if switches > 0 {
		n.switches = slices.Grow(n.switches, switches)
	}
}

// metricSlot reports whether one more entity may register its series,
// consuming a slot when it can.
func (n *Network) metricSlot() bool {
	if n.reg == nil {
		return false
	}
	if n.metricLimit > 0 && n.metricEntities >= n.metricLimit {
		return false
	}
	n.metricEntities++
	return true
}

func (n *Network) registerNIC(c *NIC) {
	if !n.metricSlot() {
		return
	}
	// One label render shared across the NIC's counter block: rendering is
	// the allocation-heavy part of registration, and at fleet scale the
	// per-entity blocks dominate topology build.
	ls := telemetry.RenderLabels(telemetry.L("nic", c.name))
	n.reg.RegisterCounterRendered(&c.rxFrames, "netsim_nic_rx_frames_total", ls)
	n.reg.RegisterCounterRendered(&c.rxBytes, "netsim_nic_rx_bytes_total", ls)
	n.reg.RegisterCounterRendered(&c.txFrames, "netsim_nic_tx_frames_total", ls)
	n.reg.RegisterCounterRendered(&c.txBytes, "netsim_nic_tx_bytes_total", ls)
	n.reg.RegisterCounterRendered(&c.ingressDropped, "netsim_nic_ingress_dropped_total", ls)
}

func (n *Network) registerLink(l *Link) {
	if !n.metricSlot() {
		return
	}
	for i := range l.dirs {
		d := &l.dirs[i]
		ls := telemetry.RenderLabels(telemetry.L("dir", d.name))
		n.reg.RegisterCounterRendered(&d.txFrames, "netsim_link_tx_frames_total", ls)
		n.reg.RegisterCounterRendered(&d.txBytes, "netsim_link_tx_bytes_total", ls)
		n.reg.RegisterCounterRendered(&d.dropFrames, "netsim_link_queue_drops_total", ls)
		n.reg.RegisterCounterRendered(&d.lossFrames, "netsim_link_loss_frames_total", ls)
		n.reg.RegisterCounterRendered(&d.corruptFrames, "netsim_link_corrupt_frames_total", ls)
		n.reg.RegisterCounterRendered(&d.dupFrames, "netsim_link_dup_frames_total", ls)
		n.reg.RegisterCounterRendered(&d.reorderFrames, "netsim_link_reorder_frames_total", ls)
		n.reg.RegisterCounterRendered(&d.inflightDrops, "netsim_link_inflight_drops_total", ls)
	}
}

func (n *Network) registerSwitch(s *Switch) {
	if !n.metricSlot() {
		return
	}
	ls := telemetry.RenderLabels(telemetry.L("switch", s.name))
	n.reg.RegisterCounterRendered(&s.forwarded, "netsim_switch_forwarded_total", ls)
	n.reg.RegisterCounterRendered(&s.flooded, "netsim_switch_flooded_total", ls)
	n.reg.RegisterCounterRendered(&s.partitionDrops, "netsim_switch_partition_drops_total", ls)
}

// emit records a flight-recorder event. The caller supplies the instant
// because in a partitioned network "now" is the emitting object's domain
// clock, not the network-wide one.
func (n *Network) emit(now sim.Time, cat telemetry.Category, name, actor string, value int64) {
	n.rec.Emit(now, cat, name, actor, value)
}

// NewNode adds a named host node in domain 0. Names must be unique.
func (n *Network) NewNode(name string) *Node {
	return n.NewNodeInDomain(name, 0)
}

// NewNodeInDomain adds a named host node assigned to the given PDES
// domain. On a serial network the domain index is ignored.
func (n *Network) NewNodeInDomain(name string, domain int) *Node {
	if n.nameSet[name] {
		name = fmt.Sprintf("%s-%d", name, len(n.nodes))
	}
	n.nameSet[name] = true
	node := &Node{net: n, name: name}
	node.dom, node.sched = n.domainFor(domain)
	n.nodes = append(n.nodes, node)
	return node
}

// Nodes returns the hosts in creation order.
func (n *Network) Nodes() []*Node {
	out := make([]*Node, len(n.nodes))
	copy(out, n.nodes)
	return out
}

func (n *Network) nextMAC() packet.MAC {
	n.macSeq++
	return packet.MACFromUint64(n.macSeq)
}

// Node is a simulated host: a container-backed device, the attacker, the
// target server or the IDS. A node owns one or more NICs.
type Node struct {
	net   *Network
	name  string
	nics  []*NIC
	dom   *sim.Domain // nil in serial networks
	sched *sim.Scheduler
	// stage, while non-nil, routes identity allocation and metric
	// registration through the owning construction stage; Merge clears it.
	stage *Stage
}

// Name returns the node's unique name.
func (nd *Node) Name() string { return nd.name }

// Network returns the owning network.
func (nd *Node) Network() *Network { return nd.net }

// Scheduler is the event queue all of this node's state advances on: its
// PDES domain scheduler in a partitioned network, the global one otherwise.
// Host stacks and applications on the node must schedule here.
func (nd *Node) Scheduler() *sim.Scheduler { return nd.sched }

// Domain reports the node's PDES domain (nil in serial networks).
func (nd *Node) Domain() *sim.Domain { return nd.dom }

// AddNIC attaches a new NIC to the node.
func (nd *Node) AddNIC() *NIC {
	if nd.stage != nil {
		return nd.stage.addNIC(nd)
	}
	nic := &NIC{node: nd, mac: nd.net.nextMAC(), index: len(nd.nics)}
	nic.name = nd.name + "/eth" + strconv.Itoa(nic.index)
	nd.nics = append(nd.nics, nic)
	nd.net.registerNIC(nic)
	return nic
}

// NIC returns the i-th NIC, or nil when absent.
func (nd *Node) NIC(i int) *NIC {
	if i < 0 || i >= len(nd.nics) {
		return nil
	}
	return nd.nics[i]
}

// NICs returns all NICs in attachment order.
func (nd *Node) NICs() []*NIC {
	out := make([]*NIC, len(nd.nics))
	copy(out, nd.nics)
	return out
}

// NIC is a network interface with a MAC address, bound to one end of a link.
type NIC struct {
	node    *Node
	mac     packet.MAC
	index   int
	name    string // "node/ethN", precomputed for alloc-free diagnostics
	link    *Link
	side    int // 0 or 1: which end of the link this NIC terminates
	handler func(raw []byte)
	// ctxHandler, when set, wins over handler and also receives the
	// frame's trace context (the netstack installs this one).
	ctxHandler func(raw []byte, tc trace.Context)
	// ingress, when set, vets every arriving frame before the handler;
	// returning false drops it (the firewall hook).
	ingress func(raw []byte) bool
	// ingressCtx, when set, wins over ingress and also receives the frame's
	// trace context: a filter that terminates sampled chains itself (the
	// inline mitigation stage records its own "mitigation" hop and drop
	// cause) attaches here. On a false return the NIC still counts and
	// emits the drop but records no span of its own.
	ingressCtx func(raw []byte, tc trace.Context) bool

	// Shared telemetry counters: the registry exports these same
	// instances, and Stats()/IngressDropped() are thin value adapters, so
	// there is exactly one source of truth per count.
	rxFrames       telemetry.Counter
	rxBytes        telemetry.Counter
	txFrames       telemetry.Counter
	txBytes        telemetry.Counter
	ingressDropped telemetry.Counter
}

var _ Port = (*NIC)(nil)

func (c *NIC) scheduler() *sim.Scheduler { return c.node.sched }
func (c *NIC) domain() *sim.Domain       { return c.node.dom }

// MAC reports the NIC's hardware address.
func (c *NIC) MAC() packet.MAC { return c.mac }

// Node reports the owning node.
func (c *NIC) Node() *Node { return c.node }

// Attached reports whether the NIC is wired to a link.
func (c *NIC) Attached() bool { return c.link != nil }

// SetHandler installs the receive callback (the host network stack).
func (c *NIC) SetHandler(fn func(raw []byte)) { c.handler = fn }

// SetHandlerCtx installs a trace-context-aware receive callback; it takes
// precedence over SetHandler.
func (c *NIC) SetHandlerCtx(fn func(raw []byte, tc trace.Context)) { c.ctxHandler = fn }

// Send transmits a raw frame out of the NIC. Frames sent on an unattached
// NIC are silently dropped, like a cable that was unplugged (device churn).
func (c *NIC) Send(raw []byte) { c.SendCtx(raw, trace.Context{}) }

// SendCtx is Send carrying a trace context: it records an instant "nic-tx"
// hop span and hands the chain to the link. An unattached NIC terminates
// the trace with DropUnattached.
func (c *NIC) SendCtx(raw []byte, tc trace.Context) {
	if c.link == nil {
		tc.Drop(c.node.sched.Now(), trace.DropUnattached)
		return
	}
	c.txFrames.Inc()
	c.txBytes.Add(uint64(len(raw)))
	if tc.Sampled() {
		now := c.node.sched.Now()
		hop := tc.Start(now, "nic-tx", c.name)
		hop.Finish(now)
		tc = hop
	}
	c.link.send(c.side, raw, tc)
}

// Stats reports cumulative frame/byte counters (rx then tx).
func (c *NIC) Stats() (rxFrames, rxBytes, txFrames, txBytes uint64) {
	return c.rxFrames.Value(), c.rxBytes.Value(), c.txFrames.Value(), c.txBytes.Value()
}

func (c *NIC) receive(raw []byte, tc trace.Context) {
	if c.ingressCtx != nil {
		if !c.ingressCtx(raw, tc) {
			c.ingressDropped.Inc()
			c.node.net.emit(c.node.sched.Now(), telemetry.CatNet, "ingress-drop", c.name, int64(len(raw)))
			return
		}
	} else if c.ingress != nil && !c.ingress(raw) {
		c.ingressDropped.Inc()
		now := c.node.sched.Now()
		c.node.net.emit(now, telemetry.CatNet, "ingress-drop", c.name, int64(len(raw)))
		if tc.Sampled() {
			tc.Start(now, "nic-rx", c.name).Drop(now, trace.DropIngressFilter)
		}
		return
	}
	c.rxFrames.Inc()
	c.rxBytes.Add(uint64(len(raw)))
	if tc.Sampled() {
		now := c.node.sched.Now()
		hop := tc.Start(now, "nic-rx", c.name)
		hop.Finish(now)
		tc = hop
	}
	if c.ctxHandler != nil {
		c.ctxHandler(raw, tc)
	} else if c.handler != nil {
		c.handler(raw)
	} else {
		tc.Drop(c.node.sched.Now(), trace.DropNoSocket)
	}
}

// SetIngressFilter installs (or clears, with nil) a frame filter that runs
// before the receive handler; returning false drops the frame. A firewall
// in front of the host attaches here.
func (c *NIC) SetIngressFilter(fn func(raw []byte) bool) { c.ingress = fn }

// SetIngressFilterCtx installs (or clears, with nil) a trace-context-aware
// ingress filter; it takes precedence over SetIngressFilter. The filter
// owns the causal-tracing side of a drop: it must terminate sampled chains
// itself (with its own hop span and drop cause) when it returns false.
func (c *NIC) SetIngressFilterCtx(fn func(raw []byte, tc trace.Context) bool) { c.ingressCtx = fn }

// IngressDropped reports frames discarded by the ingress filter.
func (c *NIC) IngressDropped() uint64 { return c.ingressDropped.Value() }

// Side reports which end of the attached link this NIC terminates (0 when
// unattached, by convention).
func (c *NIC) Side() int { return c.side }

// SetLinkUp plugs or unplugs this NIC's side of its link. Only the NIC's
// own side changes, so the operation is domain-local: a halting container
// can always unplug itself even when the far end (a switch port) lives in
// another PDES domain. No-op on an unattached NIC.
func (c *NIC) SetLinkUp(up bool) {
	if c.link != nil {
		c.link.SetUpSide(c.side, up)
	}
}

// String identifies the NIC as "node/ethN".
func (c *NIC) String() string { return c.name }

// LinkConfig sets the physical properties of a duplex link.
type LinkConfig struct {
	// RateBps is the line rate in bits per second (default 100 Mb/s).
	RateBps int64
	// Delay is the one-way propagation delay (default 1 ms).
	Delay sim.Time
	// QueueBytes caps each direction's drop-tail queue (default 128 KiB).
	QueueBytes int
	// LossProb drops each frame independently with this probability.
	// Zero disables random loss.
	LossProb float64
	// RNG seeds the loss draws. Connect splits it into one independent
	// stream per link direction (drawing two seeds per link, in creation
	// order), so a single RNG may be shared across many links without
	// coupling their loss patterns to global event interleaving. When nil,
	// per-direction streams are derived from the network seed (SetSeed)
	// keyed by (seed, link index, direction).
	RNG *sim.RNG
}

func (cfg LinkConfig) withDefaults() LinkConfig {
	if cfg.RateBps <= 0 {
		cfg.RateBps = 100_000_000
	}
	if cfg.Delay <= 0 {
		cfg.Delay = sim.Millisecond
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = 128 << 10
	}
	return cfg
}

// Impairments are runtime-adjustable link degradations beyond up/down —
// the knobs the fault injector turns. All probabilities are independent
// per-frame draws from RNG; zero values disable the corresponding effect.
type Impairments struct {
	// LossProb silently discards each frame with this probability.
	LossProb float64
	// CorruptProb flips one random bit of the delivered copy of a frame
	// with this probability. The corrupted frame still arrives; receivers
	// see it fail checksum or dissection, exactly like real bit rot.
	CorruptProb float64
	// DupProb delivers a second copy of the frame, one serialization time
	// after the original, with this probability.
	DupProb float64
	// ReorderProb holds a frame for ReorderDelay extra propagation with
	// this probability, letting frames sent after it overtake it.
	ReorderProb float64
	// ReorderDelay is the extra hold applied to reordered frames
	// (default: 4x the link's propagation delay).
	ReorderDelay sim.Time
	// RNG drives the random draws; required when any probability > 0.
	RNG *sim.RNG
}

// Active reports whether any impairment probability is set.
func (im Impairments) Active() bool {
	return im.LossProb > 0 || im.CorruptProb > 0 || im.DupProb > 0 || im.ReorderProb > 0
}

// LinkStats is the full per-link counter set, aggregated over both
// directions. QueueDrops counts drop-tail and sent-while-down discards;
// InFlightDrops counts frames that were in flight when the link went down.
type LinkStats struct {
	TxFrames      uint64
	TxBytes       uint64
	QueueDrops    uint64
	LossFrames    uint64
	CorruptFrames uint64
	DupFrames     uint64
	ReorderFrames uint64
	InFlightDrops uint64
}

// Drops totals every discarded frame (queue, random loss, in-flight cut).
func (s LinkStats) Drops() uint64 { return s.QueueDrops + s.LossFrames + s.InFlightDrops }

// Add accumulates o into s, for fleet-wide aggregation.
func (s *LinkStats) Add(o LinkStats) {
	s.TxFrames += o.TxFrames
	s.TxBytes += o.TxBytes
	s.QueueDrops += o.QueueDrops
	s.LossFrames += o.LossFrames
	s.CorruptFrames += o.CorruptFrames
	s.DupFrames += o.DupFrames
	s.ReorderFrames += o.ReorderFrames
	s.InFlightDrops += o.InFlightDrops
}

// Link is a full-duplex point-to-point link between two ports. Each
// direction has an independent transmitter with a drop-tail byte queue.
//
// Up/down state and impairments are held per SIDE: side i is owned by the
// domain of ends[i], and every mutation of side i's state executes on that
// side's scheduler. Whole-link operations (SetUp, SetImpairments) write
// both sides and are safe whenever both sides share a scheduler or no
// events are running; callers in a partitioned run route per-side
// operations (SetUpSide, SetImpairmentsSide) to the owning schedulers.
type Link struct {
	net *Network
	cfg LinkConfig
	// dirs[i] carries frames from ends[i] to ends[1-i]. The directions are
	// embedded by value: at fleet scale the two extra allocations per link
	// (and the pointer chase per delivery) were measurable in both build
	// time and steady-state heap.
	dirs    [2]direction
	ends    [2]Port
	taps    []Tap
	ctxTaps []TapCtx
	up      [2]bool // per-side cable state; owned by ends[i]'s domain
	idx     int     // creation index; the structural delivery tie-break key
}

// queuedFrame is one drop-tail queue entry: the frame plus its trace
// context, which must ride along so the "link" span covers queueing delay.
type queuedFrame struct {
	raw []byte
	tc  trace.Context
}

type direction struct {
	link   *Link
	from   int
	name   string // "src->dst" port pair, precomputed for labels/events
	queue  []queuedFrame
	queued int // bytes waiting (excluding the frame in transmission)
	busy   bool
	// doneFn is the serialization-complete handler, bound once at Connect;
	// curLen is the length of the frame occupying the transmitter. One
	// frame serializes at a time per direction (busy gates transmit), so a
	// single slot suffices — and the hot path schedules a pre-bound
	// handler instead of allocating a closure per frame.
	doneFn sim.Handler
	curLen int

	// sched is the sending port's scheduler: queueing, serialization and
	// loss draws execute in the sender's domain. fromDom/toDom/toSched
	// route the arrival — same domain via toSched.At, cross-domain via
	// fromDom.Post (the conservative lookahead message path). fromDom is
	// nil on serial networks.
	sched   *sim.Scheduler
	fromDom *sim.Domain
	toDom   *sim.Domain
	toSched *sim.Scheduler
	// arrQ buffers this direction's deliveries at the receiver; arrSeq
	// numbers them in send order (incremented in the sender's domain, so
	// it is deterministic). Together with the link index they form the
	// structural ordering key for same-instant deliveries.
	arrQ   *arrivalQueue
	arrSeq uint64

	// lossRNG drives this direction's random-loss draws, and imp its
	// impairment draws. Both are direction-private streams consumed only
	// in the sender's domain (transmit), so the draw sequence depends only
	// on this direction's frame sequence — never on how events from other
	// links or domains interleave. That per-entity discipline is what lets
	// lossy and impaired links cross domain boundaries: the sender decides
	// drop/corrupt/dup/reorder before the frame rides the lookahead
	// message path, and the receiver sees a deterministic stream.
	lossRNG *sim.RNG
	imp     Impairments

	// Shared telemetry counters; Counters() aggregates the two
	// directions' values into the legacy LinkStats view.
	txFrames      telemetry.Counter
	txBytes       telemetry.Counter
	dropFrames    telemetry.Counter
	lossFrames    telemetry.Counter
	corruptFrames telemetry.Counter
	dupFrames     telemetry.Counter
	reorderFrames telemetry.Counter
	inflightDrops telemetry.Counter
}

// Connect wires two ports with a duplex link. In a partitioned network a
// link whose endpoints live in different domains becomes a cross-domain
// channel; its propagation delay bounds the engine lookahead. Random loss
// is supported on cross-domain links: each direction draws from its own
// RNG stream (split off cfg.RNG here, or keyed from the network seed), and
// the draw happens in the sender's domain before the frame crosses the
// epoch barrier, so partitioned runs stay byte-identical to serial ones.
func (n *Network) Connect(a, b Port, cfg LinkConfig) *Link {
	l := wireLink(n, a, b, cfg, n.linkSeq)
	n.linkSeq++
	n.links = append(n.links, l)
	n.registerLink(l)
	return l
}

// wireLink builds and binds a link with a caller-chosen creation index. It
// touches no Network-owned collections, so stages can call it concurrently
// over disjoint index ranges; Connect and Stage.Connect both delegate here.
func wireLink(n *Network, a, b Port, cfg LinkConfig, idx int) *Link {
	l := &Link{net: n, cfg: cfg.withDefaults(), ends: [2]Port{a, b}, up: [2]bool{true, true}, idx: idx}
	l.dirs[0] = direction{
		link: l, from: 0, name: a.String() + "->" + b.String(),
		sched: a.scheduler(), fromDom: a.domain(), toDom: b.domain(), toSched: b.scheduler(),
	}
	l.dirs[1] = direction{
		link: l, from: 1, name: b.String() + "->" + a.String(),
		sched: b.scheduler(), fromDom: b.domain(), toDom: a.domain(), toSched: a.scheduler(),
	}
	l.dirs[0].arrQ = n.arrivalQueueFor(l.dirs[0].toSched)
	l.dirs[1].arrQ = n.arrivalQueueFor(l.dirs[1].toSched)
	l.dirs[0].doneFn = l.dirs[0].txDone
	l.dirs[1].doneFn = l.dirs[1].txDone
	if l.cfg.LossProb > 0 {
		// Per-direction loss streams, fixed at construction: two seed draws
		// per link when the caller shares an RNG (single-threaded builds
		// only), or structural keying from the network seed otherwise.
		for i := range l.dirs {
			d := &l.dirs[i]
			if l.cfg.RNG != nil {
				d.lossRNG = sim.NewRNG(l.cfg.RNG.Int63())
			} else {
				d.lossRNG = sim.KeyedStream(n.seed, lossStreamKey, uint64(l.idx), uint64(i))
			}
		}
	}
	bindPort(a, l, 0)
	bindPort(b, l, 1)
	return l
}

// lossStreamKey salts the (network seed, link index, direction) keyed
// streams so they cannot collide with other KeyedStream users.
const lossStreamKey = 0x6c696e6b2d6c6f73 // "link-los"

// crossDomain reports whether the link's endpoints execute in different
// PDES domains.
func (l *Link) crossDomain() bool {
	d := &l.dirs[0]
	return d.fromDom != nil && d.fromDom != d.toDom
}

func bindPort(p Port, l *Link, side int) {
	switch v := p.(type) {
	case *NIC:
		v.link = l
		v.side = side
	case *switchPort:
		v.link = l
		v.side = side
	}
}

// AddTap registers a passive observer invoked for every frame the link
// delivers (in either direction).
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// AddTapCtx registers a trace-context-aware observer invoked for every
// frame the link delivers.
func (l *Link) AddTapCtx(t TapCtx) { l.ctxTaps = append(l.ctxTaps, t) }

// SetUp raises or cuts both sides of the link. A side being down drops
// frames sent from it at the queue, and drops frames arriving into it at
// their arrival instant (a cut cable loses what's on the wire, counted in
// LinkStats.InFlightDrops). In a partitioned run, call mid-simulation only
// when both ends share a domain; otherwise cut each side from its owning
// scheduler with SetUpSide.
func (l *Link) SetUp(up bool) { l.up[0], l.up[1] = up, up }

// SetUpSide raises or cuts one side of the link — the end attached at
// ends[side]. Side state is owned by that end's domain: a container halt
// unplugs its own NIC's side, and the fault injector cuts a cross-domain
// link with one sub-event per side, each on the owning scheduler.
func (l *Link) SetUpSide(side int, up bool) { l.up[side] = up }

// Up reports whether the link is passing traffic in both directions.
func (l *Link) Up() bool { return l.up[0] && l.up[1] }

// UpSide reports whether ends[side]'s cable is plugged in.
func (l *Link) UpSide(side int) bool { return l.up[side] }

// SetImpairments installs (or, with the zero value, clears) runtime
// impairments on both directions. Takes effect for frames transmitted
// after the call. Each direction draws from its own stream: when im.RNG is
// set, two per-direction seeds are split off it here, so the caller's RNG
// never couples the two directions (or two domains) together. In a
// partitioned run, call mid-simulation only when both ends share a domain;
// otherwise install each side from its owning scheduler with
// SetImpairmentsSide.
func (l *Link) SetImpairments(im Impairments) {
	for side := range l.dirs {
		sideIm := im
		if im.RNG != nil {
			sideIm.RNG = sim.NewRNG(im.RNG.Int63())
		}
		l.SetImpairmentsSide(side, sideIm)
	}
}

// SetImpairmentsSide installs impairments on the single direction that
// sends FROM ends[side]. The spec's RNG is used as-is; callers routing
// per-side events across domains must supply per-side streams.
func (l *Link) SetImpairmentsSide(side int, im Impairments) { l.dirs[side].imp = im }

// Impairments returns the impairment set sending from ends[0] — the
// whole-link view for callers that installed via SetImpairments.
func (l *Link) Impairments() Impairments { return l.dirs[0].imp }

// ImpairmentsSide returns the impairment set sending from ends[side],
// including its private RNG, so a fault window can save and restore it.
func (l *Link) ImpairmentsSide(side int) Impairments { return l.dirs[side].imp }

// Ends returns the two ports the link connects, in Connect order.
func (l *Link) Ends() [2]Port { return l.ends }

// SideOf reports which end of the link p terminates, or -1 when p is not
// one of the link's ports.
func (l *Link) SideOf(p Port) int {
	switch p {
	case l.ends[0]:
		return 0
	case l.ends[1]:
		return 1
	}
	return -1
}

// SideScheduler returns the scheduler owning ends[side] — the event queue
// any mutation of that side's state (SetUpSide, SetImpairmentsSide) must
// execute on in a partitioned run. In a serial network both sides report
// the global scheduler.
func (l *Link) SideScheduler(side int) *sim.Scheduler { return l.ends[side].scheduler() }

// Stats aggregates both directions' counters (legacy three-value form;
// drops totals queue, loss and in-flight discards).
func (l *Link) Stats() (txFrames, txBytes, drops uint64) {
	s := l.Counters()
	return s.TxFrames, s.TxBytes, s.Drops()
}

// Counters aggregates both directions' full counter set. The values come
// from the same shared telemetry counters the registry exports, so the
// legacy view and /metrics can never diverge.
func (l *Link) Counters() LinkStats {
	var s LinkStats
	for i := range l.dirs {
		d := &l.dirs[i]
		s.TxFrames += d.txFrames.Value()
		s.TxBytes += d.txBytes.Value()
		s.QueueDrops += d.dropFrames.Value()
		s.LossFrames += d.lossFrames.Value()
		s.CorruptFrames += d.corruptFrames.Value()
		s.DupFrames += d.dupFrames.Value()
		s.ReorderFrames += d.reorderFrames.Value()
		s.InFlightDrops += d.inflightDrops.Value()
	}
	return s
}

// CountersSide reports the counter set of the single direction sending
// FROM ends[side] — the per-direction view the virtual-load profiler
// attributes cross-domain frames with (Counters sums both directions).
func (l *Link) CountersSide(side int) LinkStats {
	d := &l.dirs[side]
	return LinkStats{
		TxFrames:      d.txFrames.Value(),
		TxBytes:       d.txBytes.Value(),
		QueueDrops:    d.dropFrames.Value(),
		LossFrames:    d.lossFrames.Value(),
		CorruptFrames: d.corruptFrames.Value(),
		DupFrames:     d.dupFrames.Value(),
		ReorderFrames: d.reorderFrames.Value(),
		InFlightDrops: d.inflightDrops.Value(),
	}
}

// String names the link by its forward direction's port pair ("a->b").
func (l *Link) String() string { return l.dirs[0].name }

// serializationTime is how long a frame of n bytes occupies the transmitter.
func (l *Link) serializationTime(n int) sim.Time {
	return sim.Time(int64(n) * 8 * int64(sim.Second) / l.cfg.RateBps)
}

func (l *Link) send(from int, raw []byte, tc trace.Context) {
	d := &l.dirs[from]
	now := d.sched.Now()
	// The "link" span opens at enqueue, so it covers queueing delay plus
	// serialization plus propagation — the full hop latency.
	span := tc.Start(now, "link", d.name)
	if !l.up[from] {
		d.dropFrames.Inc()
		l.net.emit(now, telemetry.CatNet, "queue-drop", d.name, int64(len(raw)))
		span.Drop(now, trace.DropLinkDown)
		return
	}
	if d.busy {
		if d.queued+len(raw) > l.cfg.QueueBytes {
			d.dropFrames.Inc() // drop-tail: queue full
			l.net.emit(now, telemetry.CatNet, "queue-drop", d.name, int64(len(raw)))
			span.Drop(now, trace.DropQueueFull)
			return
		}
		d.queue = append(d.queue, queuedFrame{raw: raw, tc: span})
		d.queued += len(raw)
		return
	}
	d.transmit(raw, span)
}

func (d *direction) transmit(raw []byte, tc trace.Context) {
	l := d.link
	d.busy = true
	d.curLen = len(raw)
	ser := l.serializationTime(len(raw))
	sched := d.sched
	// Transmitter frees after serialization; frame lands after propagation.
	sched.At(sched.Now()+ser, d.doneFn)
	if l.cfg.LossProb > 0 && d.lossRNG != nil && d.lossRNG.Bool(l.cfg.LossProb) {
		d.lossFrames.Inc()
		l.net.emit(sched.Now(), telemetry.CatNet, "loss", d.name, int64(len(raw)))
		tc.Drop(sched.Now(), trace.DropLoss)
		return
	}
	arrive := sched.Now() + ser + l.cfg.Delay
	dup := false
	if im := d.imp; im.RNG != nil && im.Active() {
		if im.LossProb > 0 && im.RNG.Bool(im.LossProb) {
			d.lossFrames.Inc()
			l.net.emit(sched.Now(), telemetry.CatNet, "loss", d.name, int64(len(raw)))
			tc.Drop(sched.Now(), trace.DropLoss)
			return
		}
		if im.CorruptProb > 0 && im.RNG.Bool(im.CorruptProb) {
			raw = corruptedCopy(raw, im.RNG)
			d.corruptFrames.Inc()
			l.net.emit(sched.Now(), telemetry.CatNet, "corrupt", d.name, int64(len(raw)))
		}
		if im.DupProb > 0 && im.RNG.Bool(im.DupProb) {
			dup = true
			d.dupFrames.Inc()
			l.net.emit(sched.Now(), telemetry.CatNet, "dup", d.name, int64(len(raw)))
		}
		if im.ReorderProb > 0 && im.RNG.Bool(im.ReorderProb) {
			extra := im.ReorderDelay
			if extra <= 0 {
				extra = 4 * l.cfg.Delay
			}
			arrive += extra
			d.reorderFrames.Inc()
			l.net.emit(sched.Now(), telemetry.CatNet, "reorder", d.name, int64(len(raw)))
		}
	}
	d.scheduleArrival(arrive, raw, tc)
	if dup {
		// The duplicate shares the primary's span: the second Finish is a
		// no-op, and its downstream hops chain off the same parent.
		d.scheduleArrival(arrive+ser, raw, tc)
	}
}

// txDone frees the transmitter after serialization and starts the next
// queued frame, if any.
func (d *direction) txDone() {
	d.txFrames.Inc()
	d.txBytes.Add(uint64(d.curLen))
	if len(d.queue) > 0 {
		next := d.queue[0]
		d.queue[0] = queuedFrame{}
		d.queue = d.queue[1:]
		d.queued -= len(next.raw)
		d.transmit(next.raw, next.tc)
	} else {
		d.busy = false
	}
}

// scheduleArrival lands the frame at the receiving port at instant at. The
// delivery event executes in the RECEIVER's domain: for a same-domain link
// that is a plain scheduler insert; for a cross-domain link it rides the
// engine's lookahead message path (arrive >= now + link delay >= the end
// of the sender's current window, so Post's contract always holds).
//
// The event does not process the frame directly — it enqueues it on the
// receiving scheduler's arrival queue, which drains in the tail phase of
// the instant sorted by (link index, direction, send sequence). Without
// this normalization, two frames arriving at the same instant from
// different domains would be processed in engine merge order, while the
// serial scheduler processes them in global scheduling order — and
// order-sensitive receivers (switch MAC learning/eviction) would diverge
// between the two execution modes.
func (d *direction) scheduleArrival(at sim.Time, raw []byte, tc trace.Context) {
	d.arrSeq++
	e := arrivalEventPool.Get().(*arrivalEvent)
	e.q = d.arrQ
	e.a = arrival{dir: d, seq: d.arrSeq, raw: raw, tc: tc}
	if d.fromDom != nil && d.fromDom != d.toDom {
		d.fromDom.Post(d.toDom, at, e.fn)
	} else {
		d.toSched.At(at, e.fn)
	}
}

// arrivalEvent carries one pending delivery from the sender's schedule
// point to the receiver's arrival queue. Events are pooled with their
// handler closure bound once at pool construction, so the steady-state
// hop path schedules deliveries without allocating. The pool is shared
// across domains (sync.Pool is concurrency-safe), and reuse order cannot
// affect results: firing only moves the payload into the receiver's
// arrival queue, which imposes its own structural order.
type arrivalEvent struct {
	q  *arrivalQueue
	a  arrival
	fn sim.Handler // bound once to fire
}

func (e *arrivalEvent) fire() {
	q, a := e.q, e.a
	e.q, e.a = nil, arrival{}
	arrivalEventPool.Put(e)
	q.add(a)
}

var arrivalEventPool sync.Pool

func init() {
	arrivalEventPool.New = func() any {
		e := &arrivalEvent{}
		e.fn = e.fire
		return e
	}
}

// deliver processes one frame at the receiving port, at the instant the
// arrival queue drains.
func (d *direction) deliver(raw []byte, tc trace.Context) {
	l := d.link
	now := d.toSched.Now()
	if !l.up[1-d.from] {
		d.inflightDrops.Inc()
		l.net.emit(now, telemetry.CatNet, "inflight-drop", d.name, int64(len(raw)))
		tc.Drop(now, trace.DropInFlightCut)
		return
	}
	tc.Finish(now)
	for _, tap := range l.taps {
		tap(now, raw)
	}
	for _, tap := range l.ctxTaps {
		tap(now, raw, tc)
	}
	l.ends[1-d.from].receive(raw, tc)
}

// arrival is one pending frame delivery awaiting the tail-phase drain.
type arrival struct {
	dir *direction
	seq uint64
	raw []byte
	tc  trace.Context
}

// arrivalQueue buffers all frame deliveries landing on one scheduler at
// the current instant and processes them in structural order — a function
// of the topology (link creation index, direction, per-direction send
// sequence), never of event scheduling order. Serial and partitioned
// executions therefore process same-instant deliveries identically: the
// serial network has a single queue spanning every link, a partitioned
// network one queue per domain, and sorting the union equals sorting each
// domain's subset because deliveries only touch receiver-local state.
// The pending slice and its backing array are reused across instants, so
// steady-state delivery stays allocation-free.
type arrivalQueue struct {
	sched   *sim.Scheduler
	pending []arrival
	armed   bool
	drainFn sim.Handler // bound once so arming the drain never allocates
}

func newArrivalQueue(sched *sim.Scheduler) *arrivalQueue {
	q := &arrivalQueue{sched: sched}
	q.drainFn = q.drain
	return q
}

// arrivalQueueFor returns the (lazily created) queue for the scheduler a
// link direction delivers into. Called only during topology construction,
// which is single-threaded.
func (n *Network) arrivalQueueFor(sched *sim.Scheduler) *arrivalQueue {
	if n.arrQs == nil {
		n.arrQs = make(map[*sim.Scheduler]*arrivalQueue)
	}
	q := n.arrQs[sched]
	if q == nil {
		q = newArrivalQueue(sched)
		n.arrQs[sched] = q
	}
	return q
}

func (q *arrivalQueue) add(a arrival) {
	q.pending = append(q.pending, a)
	if !q.armed {
		q.armed = true
		q.sched.AtTail(q.sched.Now(), q.drainFn)
	}
}

func (q *arrivalQueue) drain() {
	// The common case — one frame arriving at this scheduler this instant —
	// needs no ordering at all; skip the sort machinery entirely.
	if len(q.pending) > 1 {
		slices.SortFunc(q.pending, func(a, b arrival) int {
			if c := cmp.Compare(a.dir.link.idx, b.dir.link.idx); c != 0 {
				return c
			}
			if c := cmp.Compare(a.dir.from, b.dir.from); c != 0 {
				return c
			}
			return cmp.Compare(a.seq, b.seq)
		})
	}
	// Deliveries may enqueue new arrivals only at strictly later instants
	// (serialization and propagation delays are always positive), so the
	// slice is stable while we walk it.
	for i := range q.pending {
		a := &q.pending[i]
		a.dir.deliver(a.raw, a.tc)
		q.pending[i] = arrival{}
	}
	q.pending = q.pending[:0]
	q.armed = false
}

// corruptedCopy returns raw with one pseudo-randomly chosen bit flipped,
// leaving the original (which other arrival events may share) untouched.
func corruptedCopy(raw []byte, rng *sim.RNG) []byte {
	if len(raw) == 0 {
		return raw
	}
	b := make([]byte, len(raw))
	copy(b, raw)
	bit := rng.Intn(len(b) * 8)
	b[bit/8] ^= 1 << uint(bit%8)
	return b
}
