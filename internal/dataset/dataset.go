// Package dataset assembles the labeled training/evaluation data the
// testbed produces: per-packet feature vectors with benign/malicious
// ground-truth labels, plus the splitting, scaling and CSV machinery the
// ML pipeline needs. The paper's 10-minute generation run yields a
// "nearly balanced" corpus (3,012,885 malicious vs 2,243,634 benign
// packets); the Summary type reports the same balance statistics.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"ddoshield/internal/sim"
)

// Labels.
const (
	// Benign marks legitimate traffic.
	Benign = 0
	// Malicious marks botnet traffic (scan, C2, flood).
	Malicious = 1
)

// Sample is one labeled feature vector.
type Sample struct {
	X []float64
	Y int
}

// Dataset is an ordered labeled sample collection with a feature schema.
type Dataset struct {
	// Names are the feature names, one per vector column.
	Names   []string
	Samples []Sample
}

// New returns an empty dataset over the given schema.
func New(names []string) *Dataset {
	ns := make([]string, len(names))
	copy(ns, names)
	return &Dataset{Names: ns}
}

// Add appends a sample (the vector is retained, not copied).
func (d *Dataset) Add(x []float64, y int) {
	d.Samples = append(d.Samples, Sample{X: x, Y: y})
}

// Len reports the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// NumFeatures reports the vector width.
func (d *Dataset) NumFeatures() int { return len(d.Names) }

// Summary reports per-class counts and balance.
type Summary struct {
	Total     int
	Benign    int
	Malicious int
}

// BalanceRatio is the minority/majority class ratio in [0,1].
func (s Summary) BalanceRatio() float64 {
	if s.Benign == 0 || s.Malicious == 0 {
		return 0
	}
	lo, hi := s.Benign, s.Malicious
	if lo > hi {
		lo, hi = hi, lo
	}
	return float64(lo) / float64(hi)
}

// String renders the summary in the paper's reporting style.
func (s Summary) String() string {
	return fmt.Sprintf("%d samples (%d malicious, %d benign, balance %.2f)",
		s.Total, s.Malicious, s.Benign, s.BalanceRatio())
}

// Summarize counts classes.
func (d *Dataset) Summarize() Summary {
	var s Summary
	s.Total = len(d.Samples)
	for i := range d.Samples {
		if d.Samples[i].Y == Malicious {
			s.Malicious++
		} else {
			s.Benign++
		}
	}
	return s
}

// Shuffle permutes samples in place.
func (d *Dataset) Shuffle(rng *sim.RNG) {
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

// Split partitions into train/test by fraction (of samples going to
// train), preserving order. Shuffle first for a random split.
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	n := int(float64(len(d.Samples)) * trainFrac)
	train = &Dataset{Names: d.Names, Samples: d.Samples[:n]}
	test = &Dataset{Names: d.Names, Samples: d.Samples[n:]}
	return train, test
}

// Subsample returns a dataset of at most n samples drawn without
// replacement.
func (d *Dataset) Subsample(n int, rng *sim.RNG) *Dataset {
	if n >= len(d.Samples) {
		out := &Dataset{Names: d.Names, Samples: make([]Sample, len(d.Samples))}
		copy(out.Samples, d.Samples)
		return out
	}
	perm := rng.Perm(len(d.Samples))
	out := &Dataset{Names: d.Names, Samples: make([]Sample, 0, n)}
	for _, idx := range perm[:n] {
		out.Samples = append(out.Samples, d.Samples[idx])
	}
	return out
}

// XY splits the dataset into a feature matrix and label vector (views, not
// copies, of the sample vectors).
func (d *Dataset) XY() ([][]float64, []int) {
	xs := make([][]float64, len(d.Samples))
	ys := make([]int, len(d.Samples))
	for i := range d.Samples {
		xs[i] = d.Samples[i].X
		ys[i] = d.Samples[i].Y
	}
	return xs, ys
}

// StandardScaler centers features to zero mean and unit variance — the
// preprocessing both K-Means (distance-based) and the CNN (gradient-based)
// require to treat features on very different scales (ports vs counts vs
// entropies) equitably.
type StandardScaler struct {
	Mean []float64
	Std  []float64
}

// FitStandard learns per-feature mean and standard deviation.
func FitStandard(d *Dataset) *StandardScaler {
	nf := d.NumFeatures()
	sc := &StandardScaler{Mean: make([]float64, nf), Std: make([]float64, nf)}
	n := float64(len(d.Samples))
	if n == 0 {
		for i := range sc.Std {
			sc.Std[i] = 1
		}
		return sc
	}
	for i := range d.Samples {
		for j, v := range d.Samples[i].X {
			sc.Mean[j] += v
		}
	}
	for j := range sc.Mean {
		sc.Mean[j] /= n
	}
	for i := range d.Samples {
		for j, v := range d.Samples[i].X {
			dv := v - sc.Mean[j]
			sc.Std[j] += dv * dv
		}
	}
	for j := range sc.Std {
		sc.Std[j] = math.Sqrt(sc.Std[j] / n)
		if sc.Std[j] < 1e-9 {
			sc.Std[j] = 1 // constant feature: leave centered at 0
		}
	}
	return sc
}

// Transform scales x in place and returns it.
func (sc *StandardScaler) Transform(x []float64) []float64 {
	for j := range x {
		x[j] = (x[j] - sc.Mean[j]) / sc.Std[j]
	}
	return x
}

// Transformed returns a scaled copy of x.
func (sc *StandardScaler) Transformed(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - sc.Mean[j]) / sc.Std[j]
	}
	return out
}

// Apply scales every sample of d in place.
func (sc *StandardScaler) Apply(d *Dataset) {
	for i := range d.Samples {
		sc.Transform(d.Samples[i].X)
	}
}

// WriteCSV emits "feature1,...,featureN,label" rows.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, n := range d.Names {
		if _, err := bw.WriteString(n + ","); err != nil {
			return fmt.Errorf("dataset: write csv: %w", err)
		}
	}
	if _, err := bw.WriteString("label\n"); err != nil {
		return fmt.Errorf("dataset: write csv: %w", err)
	}
	for i := range d.Samples {
		s := &d.Samples[i]
		for _, v := range s.X {
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64) + ","); err != nil {
				return fmt.Errorf("dataset: write csv: %w", err)
			}
		}
		if _, err := bw.WriteString(strconv.Itoa(s.Y) + "\n"); err != nil {
			return fmt.Errorf("dataset: write csv: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCSV parses the WriteCSV format.
func ReadCSV(r io.Reader) (*Dataset, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<20), 1<<20)
	if !br.Scan() {
		return nil, fmt.Errorf("dataset: read csv: missing header")
	}
	header := strings.Split(strings.TrimSpace(br.Text()), ",")
	if len(header) < 2 || header[len(header)-1] != "label" {
		return nil, fmt.Errorf("dataset: read csv: bad header")
	}
	d := New(header[:len(header)-1])
	line := 1
	for br.Scan() {
		line++
		text := strings.TrimSpace(br.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("dataset: read csv line %d: %d fields, want %d", line, len(fields), len(header))
		}
		x := make([]float64, len(fields)-1)
		for j := 0; j < len(fields)-1; j++ {
			v, err := strconv.ParseFloat(fields[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: read csv line %d: %w", line, err)
			}
			x[j] = v
		}
		y, err := strconv.Atoi(fields[len(fields)-1])
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv line %d: %w", line, err)
		}
		d.Add(x, y)
	}
	return d, br.Err()
}

// MinMaxScaler rescales each feature to [0,1] over the training range —
// the bounded alternative to standardization, useful for models that
// assume inputs in a fixed interval.
type MinMaxScaler struct {
	Min []float64
	Max []float64
}

// FitMinMax learns per-feature minima and maxima.
func FitMinMax(d *Dataset) *MinMaxScaler {
	nf := d.NumFeatures()
	sc := &MinMaxScaler{Min: make([]float64, nf), Max: make([]float64, nf)}
	for j := range sc.Min {
		sc.Min[j] = math.Inf(1)
		sc.Max[j] = math.Inf(-1)
	}
	for i := range d.Samples {
		for j, v := range d.Samples[i].X {
			if v < sc.Min[j] {
				sc.Min[j] = v
			}
			if v > sc.Max[j] {
				sc.Max[j] = v
			}
		}
	}
	if len(d.Samples) == 0 {
		for j := range sc.Min {
			sc.Min[j], sc.Max[j] = 0, 1
		}
	}
	return sc
}

// Transform rescales x in place and returns it. Values outside the
// training range are clamped to [0,1]; constant features map to 0.
func (sc *MinMaxScaler) Transform(x []float64) []float64 {
	for j := range x {
		span := sc.Max[j] - sc.Min[j]
		if span <= 0 {
			x[j] = 0
			continue
		}
		v := (x[j] - sc.Min[j]) / span
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		x[j] = v
	}
	return x
}

// Apply rescales every sample of d in place.
func (sc *MinMaxScaler) Apply(d *Dataset) {
	for i := range d.Samples {
		sc.Transform(d.Samples[i].X)
	}
}
