// Package parallel provides the bounded worker pool behind experiment
// sweeps. Each sweep point runs an independent simulation with its own
// scheduler and RNG, so points can execute concurrently — determinism is
// preserved by addressing results into index-fixed slices, never by sharing
// mutable state between workers.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count setting: n > 0 is used as-is, anything
// else (the zero value of a config field) means one worker per available
// CPU. The CPU count is read at call time — GOMAXPROCS is re-queried on
// every call rather than cached at init, so a runtime.GOMAXPROCS change
// (or a container CPU-quota adjustment picked up by the runtime) is
// reflected by the next call.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) on at most workers goroutines.
// workers is resolved through Workers and then clamped to n, so a call
// with workers > n never spawns idle goroutines — For(2, 64, fn) starts
// exactly two. With a single worker the loop runs inline on the caller's
// goroutine in index order — the forced-serial mode the determinism
// regression tests compare against. fn must not share mutable state
// across indices; write results to result[i].
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
