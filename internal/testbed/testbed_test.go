package testbed

import (
	"testing"
	"time"

	"ddoshield/internal/botnet"
	"ddoshield/internal/dataset"
	"ddoshield/internal/features"
	"ddoshield/internal/ids"
	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// smallTestbed assembles a fast-converging instance for tests: few
// devices, eager scanner.
func smallTestbed(t *testing.T, seed int64) *Testbed {
	t.Helper()
	tb, err := New(Config{
		Seed:         seed,
		NumDevices:   5,
		MeanThink:    2 * time.Second,
		ScanInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestTestbedEndToEnd is the Fig. 1 check: the assembled topology produces
// benign traffic, the Mirai campaign conscripts the vulnerable devices,
// and a commanded flood reaches the TServer.
func TestTestbedEndToEnd(t *testing.T) {
	tb := smallTestbed(t, 1)

	// Count flood SYNs arriving on the TServer uplink.
	floodSYNs := 0
	tb.AddTap(netsim.DecodeTap(func(p *packet.Packet) {
		if p.HasTCP && p.IPv4.Dst == tb.TServerAddr() &&
			p.TCP.Flags == packet.FlagSYN && DefaultSpoofRange.Contains(p.IPv4.Src) {
			floodSYNs++
		}
	}))

	tb.Start()

	// Infection phase.
	if err := tb.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Fleet of 5 cycles the default profiles: ip-camera, dvr, router
	// vulnerable; sensor, smart-tv hardened.
	if got := tb.InfectedCount(); got != 3 {
		t.Fatalf("infected = %d, want 3 vulnerable devices", got)
	}
	if tb.C2().Bots() != 3 {
		t.Fatalf("C2 bots = %d", tb.C2().Bots())
	}
	for _, dh := range tb.Devices() {
		if !dh.Device.Vulnerable() && dh.Device.Infected() {
			t.Fatalf("hardened device %s infected", dh.Container.Name())
		}
	}

	// Benign traffic flowed from all three services.
	httpReqs, _ := tb.HTTPServer().Stats()
	if httpReqs == 0 {
		t.Fatal("no HTTP traffic")
	}
	streams, _ := tb.VideoServer().Stats()
	if streams == 0 {
		t.Fatal("no video traffic")
	}
	_, transfers, _, _ := tb.FTPServer().Stats()
	if transfers == 0 {
		t.Fatal("no FTP traffic")
	}
	if floodSYNs != 0 {
		t.Fatalf("flood traffic before any attack command: %d", floodSYNs)
	}

	// Attack phase.
	tb.C2().Broadcast(botnet.Command{
		Type: botnet.AttackSYN, Target: tb.TServerAddr(), Port: 80,
		Duration: 5 * time.Second, PPS: 200,
	})
	if err := tb.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// 3 bots * 200 pps * 5 s = ~3000 SYNs.
	if floodSYNs < 2000 {
		t.Fatalf("flood SYNs at TServer = %d, want ~3000", floodSYNs)
	}
}

func TestLabelerGroundTruth(t *testing.T) {
	tb := smallTestbed(t, 3)
	label := tb.Labeler()
	cases := []struct {
		name string
		b    features.Basic
		want int
	}{
		{"benign http", features.Basic{Src: deviceAddr(0), Dst: addrTServer, Proto: packet.ProtoTCP, DstPort: 80}, dataset.Benign},
		{"scan", features.Basic{Src: addrAttacker, Dst: deviceAddr(1), Proto: packet.ProtoTCP, DstPort: 23}, dataset.Malicious},
		{"scan reply", features.Basic{Src: deviceAddr(1), Dst: addrAttacker, Proto: packet.ProtoTCP, SrcPort: 23}, dataset.Malicious},
		{"c2 keepalive", features.Basic{Src: deviceAddr(0), Dst: addrC2, Proto: packet.ProtoTCP, DstPort: 5555}, dataset.Malicious},
		{"spoofed syn", features.Basic{Src: packet.MustParseAddr("10.0.201.7"), Dst: addrTServer, Proto: packet.ProtoTCP, DstPort: 80}, dataset.Malicious},
		{"backscatter synack", features.Basic{Src: addrTServer, Dst: packet.MustParseAddr("10.0.202.9"), Proto: packet.ProtoTCP, SrcPort: 80}, dataset.Malicious},
		{"udp flood", features.Basic{Src: deviceAddr(0), Dst: addrTServer, Proto: packet.ProtoUDP, DstPort: 9999}, dataset.Malicious},
		{"benign ftp data", features.Basic{Src: addrTServer, Dst: deviceAddr(2), Proto: packet.ProtoTCP, SrcPort: 20001}, dataset.Benign},
	}
	for _, c := range cases {
		if got := label(&c.b); got != c.want {
			t.Errorf("%s: label = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestDatasetGeneration is the §IV-D dataset experiment at test scale: a
// combined benign+attack run must yield a labeled, roughly balanced
// corpus containing both classes.
func TestDatasetGeneration(t *testing.T) {
	tb := smallTestbed(t, 4)
	dc := tb.NewDatasetCollector(time.Second)
	tb.AddTap(dc.Tap())
	tb.Start()
	if err := tb.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	tb.ScheduleAttackWave(100*time.Second, 5*time.Second, tb.DefaultAttackWave(20*time.Second, 100))
	if err := tb.Run(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	ds := dc.Dataset()
	sum := ds.Summarize()
	if sum.Benign == 0 || sum.Malicious == 0 {
		t.Fatalf("dataset missing a class: %v", sum)
	}
	if sum.Total < 1000 {
		t.Fatalf("dataset too small: %v", sum)
	}
	if ds.NumFeatures() != features.NumFeatures() {
		t.Fatalf("schema width = %d", ds.NumFeatures())
	}
}

// TestIDSPipeline is the Fig. 2 check: a detection unit tapped at the
// TServer sees windows, scores them against ground truth and meters CPU
// into the IDS container.
func TestIDSPipeline(t *testing.T) {
	tb := smallTestbed(t, 5)
	unit := ids.New(ids.Config{
		Window:  time.Second,
		Labeler: tb.Labeler(),
		Meter:   tb.IDSContainer(),
	})
	tb.AddTap(unit.Tap())
	tb.Start()
	if err := tb.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	unit.Flush()
	if len(unit.Results()) < 10 {
		t.Fatalf("windows = %d", len(unit.Results()))
	}
	if unit.PacketsSeen() == 0 {
		t.Fatal("no packets classified")
	}
	if tb.IDSContainer().CPUTime() <= 0 {
		t.Fatal("no CPU metered into the IDS container")
	}
}

func TestThroughputDegradesUnderAttack(t *testing.T) {
	tb, err := New(Config{
		Seed:         6,
		NumDevices:   5,
		MeanThink:    time.Second,
		ScanInterval: 100 * time.Millisecond,
		// Narrow uplink so the flood visibly displaces benign traffic.
		Link: netsim.LinkConfig{RateBps: 5_000_000, Delay: sim.Millisecond, QueueBytes: 32 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := tb.NewThroughputSampler(time.Second)
	tb.Start()
	if err := tb.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if tb.C2().Bots() == 0 {
		t.Fatal("no bots for the attack")
	}
	// Attack at high PPS: 3 bots * 2000 pps * ~60B SYNs + backscatter.
	tb.C2().Broadcast(botnet.Command{
		Type: botnet.AttackSYN, Target: tb.TServerAddr(), Port: 80,
		Duration: 30 * time.Second, PPS: 3000,
	})
	if err := tb.Run(40 * time.Second); err != nil {
		t.Fatal(err)
	}
	now := tb.Scheduler().Now()
	attackStart := now - 40*sim.Second
	// The TServer's listener should have felt backlog pressure.
	_, synDropped, halfExpired := tb.HTTPServer().Listener().Stats()
	if synDropped == 0 && halfExpired == 0 {
		t.Fatal("SYN flood exerted no backlog pressure on the TServer")
	}
	// And its uplink saw elevated load during the attack.
	during := ts.MeanRxBps(attackStart, attackStart+30*sim.Second)
	before := ts.MeanRxBps(0, attackStart)
	if during <= before {
		t.Fatalf("rx bps during attack (%0.f) not above baseline (%0.f)", during, before)
	}
}

func TestChurnRebootsDevices(t *testing.T) {
	tb, err := New(Config{
		Seed:         7,
		NumDevices:   6,
		ScanInterval: 100 * time.Millisecond,
		Churn: ChurnConfig{
			Enabled:  true,
			MeanUp:   20 * time.Second,
			MeanDown: 2 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	if err := tb.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	restarts := 0
	for _, dh := range tb.Devices() {
		restarts += dh.Container.Restarts()
	}
	if restarts == 0 {
		t.Fatal("churn produced no reboots")
	}
}

func TestConfigValidation(t *testing.T) {
	// The old 200-device clamp is gone: a 1000-device fleet builds as
	// requested (devices beyond the classic 10.0.2.x plane land in the
	// 10.4.0.0+ extension plane).
	tb, err := New(Config{Seed: 9, NumDevices: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Devices()) != 1000 {
		t.Fatalf("fleet size not honored: %d", len(tb.Devices()))
	}
	// Addresses must be unique across both planes.
	seen := map[string]int{}
	for i, dh := range tb.Devices() {
		a := dh.Container.Addr().String()
		if j, dup := seen[a]; dup {
			t.Fatalf("address collision: devices %d and %d both at %s", j, i, a)
		}
		seen[a] = i
	}
	// Beyond MaxDevices is an error, not a silent clamp.
	if _, err := New(Config{Seed: 9, NumDevices: MaxDevices + 1}); err == nil {
		t.Fatal("NumDevices > MaxDevices not rejected")
	}
}
