package botnet

import (
	"testing"

	"ddoshield/internal/packet"
)

// TestScanSpanClassicDefault pins the attacker's historical probe space:
// a /24 target range with no extra ranges spans exactly 254 addresses.
// The testbed's default plane depends on this staying fixed.
func TestScanSpanClassicDefault(t *testing.T) {
	atk := NewAttacker(AttackerConfig{
		TargetRange: packet.Prefix{Addr: packet.AddrFrom4(10, 0, 2, 0), Bits: 24},
	})
	if got := atk.ScanSpan(); got != 254 {
		t.Fatalf("classic /24 scan span = %d, want 254", got)
	}
}

// TestScanSpanExtraRanges checks that extra ranges widen the span
// additively: the span is the uniform draw's denominator, so it must be
// the exact concatenated address count.
func TestScanSpanExtraRanges(t *testing.T) {
	atk := NewAttacker(AttackerConfig{
		TargetRange: packet.Prefix{Addr: packet.AddrFrom4(10, 0, 2, 0), Bits: 24},
		ExtraRanges: []ScanRange{
			{Base: packet.AddrFrom4(10, 4, 0, 0), Count: 1000},
			{Base: packet.AddrFrom4(10, 5, 0, 0), Count: 24},
		},
	})
	if got := atk.ScanSpan(); got != 254+1000+24 {
		t.Fatalf("widened scan span = %d, want %d", got, 254+1000+24)
	}
}
