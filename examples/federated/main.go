// Federated emulates the FL-based NIDS the paper's conclusion sets as its
// next objective: each IoT site keeps its own captured traffic and trains
// the CNN detector locally; only weights reach the aggregation server
// (FedAvg). The resulting global model is then evaluated in the real-time
// IDS on fresh traffic, and the Green-AI energy budget of the federation
// is reported.
package main

import (
	"fmt"
	"log"
	"time"

	"ddoshield/internal/dataset"
	"ddoshield/internal/experiments"
	"ddoshield/internal/fl"
	"ddoshield/internal/ids"
	"ddoshield/internal/ml/cnn"
	"ddoshield/internal/sim"
	"ddoshield/internal/testbed"
)

func main() {
	sc := experiments.Quick()

	fmt.Println("=== 1. capture traffic (one shared run, sharded per site) ===")
	ds, err := sc.GenerateDataset()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("corpus:", ds.Summarize())

	// Preprocess exactly as the centralized pipeline would.
	rng := sim.NewRNG(sc.Seed)
	work := ds.Subsample(20000, rng)
	work.Shuffle(rng)
	scaler := dataset.FitStandard(work)
	scaler.Apply(work)

	// Non-IID shards: sites see different benign/malicious mixes.
	const sites = 4
	shards := fl.Partition(work, sites, true, rng)
	for i, sh := range shards {
		fmt.Printf("  site %d: %v\n", i, sh.Summarize())
	}

	fmt.Println("\n=== 2. federated training (FedAvg) ===")
	res, err := fl.Train(fl.Config{
		Rounds:      5,
		LocalEpochs: 2,
		Model:       cnn.Config{Conv1Filters: 8, Conv2Filters: 16, Hidden: 48},
		Seed:        sc.Seed,
	}, shards)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Rounds {
		fmt.Printf("  round %d: %d clients, mean local loss %.4f, %.0f J\n",
			r.Round, r.Participants, r.MeanLocalLoss, r.EnergyJoules)
	}
	fmt.Printf("total client-side training energy: %.0f J\n", res.TotalEnergyJoules)

	fmt.Println("\n=== 3. real-time evaluation of the global model ===")
	tb, err := testbed.New(testbed.Config{Seed: sc.Seed + 1, NumDevices: sc.Devices})
	if err != nil {
		log.Fatal(err)
	}
	unit := ids.New(ids.Config{
		Model:   res.Global,
		Scaler:  scaler,
		Window:  time.Second,
		Labeler: tb.Labeler(),
	})
	tb.AddTap(unit.Tap())
	tb.Start()
	if err := tb.Run(75 * time.Second); err != nil { // infection lead
		log.Fatal(err)
	}
	tb.ScheduleAttackWave(80*time.Second, 3*time.Second,
		tb.DefaultAttackWave(12*time.Second, 600))
	if err := tb.Run(60 * time.Second); err != nil {
		log.Fatal(err)
	}
	unit.Flush()
	fmt.Printf("federated CNN real-time accuracy: %.2f%% over %d windows (worst %.2f%%)\n",
		unit.AverageAccuracy()*100, len(unit.Results()), unit.MinAccuracy()*100)
}
