package trace

import (
	"bytes"
	"strings"
	"testing"

	"ddoshield/internal/sim"
)

func flowN(n uint32) Flow {
	return Flow{Src: 0x0a000000 | n, Dst: 0x0a000101, SrcPort: uint16(1000 + n), DstPort: 80, Proto: 6}
}

func TestSamplingDeterministicAndRateBounded(t *testing.T) {
	a := New(Config{Seed: 7, SampleRate: 1.0 / 8})
	b := New(Config{Seed: 7, SampleRate: 1.0 / 8})
	sampled := 0
	const n = 4096
	for i := uint32(0); i < n; i++ {
		f := flowN(i)
		if a.Sampled(f) != b.Sampled(f) {
			t.Fatalf("flow %d: same seed disagrees", i)
		}
		if a.Sampled(f) {
			sampled++
		}
	}
	// 1/8 of 4096 = 512 expected; allow generous slack for hash variance.
	if sampled < n/16 || sampled > n/4 {
		t.Fatalf("sampled %d of %d flows at rate 1/8", sampled, n)
	}
	if New(Config{Seed: 99, SampleRate: 1}).Sampled(flowN(1)) != true {
		t.Fatal("rate 1 must sample everything")
	}
	if New(Config{Seed: 99}).Sampled(flowN(1)) {
		t.Fatal("rate 0 must sample nothing")
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	f := flowN(1)
	oc := tr.OriginKind(100, f, KindAttack, "flood-syn", "bot-1")
	if !oc.Sampled() {
		t.Fatal("origin not sampled at rate 1")
	}
	hop := oc.Start(100, "nic-tx", "bot-1/eth0")
	hop.Finish(100)
	link := hop.Start(100, "link", "bot-1/eth0->sw/port0")
	oc.Finish(110)
	link.Finish(2100)
	del := link.Start(2100, "deliver", "10.0.1.1")
	del.FinishTerminal(2150)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	// Finish order: nic-tx, origin, link, deliver.
	if spans[0].Name != "nic-tx" || spans[1].Name != "flood-syn" || spans[2].Name != "link" || spans[3].Name != "deliver" {
		t.Fatalf("unexpected finish order: %v %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name, spans[3].Name)
	}
	root := spans[1]
	if !root.Root() || root.Flow != f || root.Kind != KindAttack {
		t.Fatalf("root span mangled: %+v", root)
	}
	if spans[2].Parent != spans[0].ID || spans[3].Parent != spans[2].ID {
		t.Fatal("span chain broken")
	}
	if got := spans[3].Latency(); got != 50 {
		t.Fatalf("deliver latency = %v, want 50", got)
	}
	if at, ok := tr.FirstAttackOrigin(); !ok || at != 100 {
		t.Fatalf("FirstAttackOrigin = %v,%v want 100,true", at, ok)
	}
	if tr.Active() != 0 {
		t.Fatalf("%d spans still active", tr.Active())
	}

	// Double finish is a no-op.
	before := len(tr.Spans())
	del.Finish(9999)
	if len(tr.Spans()) != before {
		t.Fatal("double Finish recorded a second span")
	}
}

func TestDropCauses(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	oc := tr.OriginKind(0, flowN(2), KindBenign, "tcp-tx", "10.0.2.1")
	link := oc.Start(0, "link", "a->b")
	link.Drop(5, DropQueueFull)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Drop != DropQueueFull || !spans[0].Dropped() {
		t.Fatalf("drop span: %+v", spans)
	}
	for c := DropCause(1); c < numDropCauses; c++ {
		if c.String() == "" {
			t.Fatalf("cause %d has no name", c)
		}
		if ParseDropCause(c.String()) != c {
			t.Fatalf("cause %d does not round-trip", c)
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		if ParseKind(k.String()) != k {
			t.Fatalf("kind %d does not round-trip", k)
		}
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Config{SampleRate: 1, SpanCapacity: 4})
	for i := 0; i < 10; i++ {
		oc := tr.OriginKind(sim.Time(i), flowN(uint32(i)), KindBenign, "tcp-tx", "h")
		oc.Finish(sim.Time(i + 1))
	}
	if got := tr.Evicted(); got != 6 {
		t.Fatalf("Evicted = %d, want 6", got)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Start != sim.Time(6+i) {
			t.Fatalf("ring[%d].Start = %v, want %v (oldest-first order)", i, s.Start, 6+i)
		}
	}
}

func TestExportRoundTripAndDeterminism(t *testing.T) {
	run := func() []Span {
		tr := New(Config{Seed: 3, SampleRate: 1})
		oc := tr.OriginKind(10, flowN(7), KindAttack, "flood-udp", "bot-2")
		l := oc.Start(10, "link", "a->b")
		oc.Finish(12)
		l.Finish(500)
		d := l.Start(500, "deliver", "srv")
		d.Drop(510, DropNoSocket)
		b := tr.OriginKind(20, Flow{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 17}, KindBenign, "udp-tx", "dev-1")
		b.FinishTag(30, "alert")
		return tr.Spans()
	}
	var buf1, buf2 bytes.Buffer
	if err := WriteSpans(&buf1, run()); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpans(&buf2, run()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("identical runs serialized differently")
	}
	back, err := ReadSpans(strings.NewReader(buf1.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := run()
	if len(back) != len(want) {
		t.Fatalf("read %d spans, want %d", len(back), len(want))
	}
	for i := range want {
		if back[i] != want[i] {
			t.Fatalf("span %d: %+v != %+v", i, back[i], want[i])
		}
	}
}

func TestFlowStringRoundTrip(t *testing.T) {
	f := Flow{Src: 0x0a00c805, Dst: 0x0a000101, SrcPort: 1024, DstPort: 80, Proto: 6}
	s := FlowString(f)
	if s != "10.0.200.5:1024>10.0.1.1:80/6" {
		t.Fatalf("FlowString = %q", s)
	}
	got, err := ParseFlow(s)
	if err != nil || got != f {
		t.Fatalf("ParseFlow(%q) = %+v, %v", s, got, err)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	oc := tr.Origin(0, flowN(1), "x", "y")
	if oc.Sampled() {
		t.Fatal("nil tracer sampled a flow")
	}
	oc.Start(0, "a", "b").Finish(1)
	oc.Drop(1, DropLoss)
	oc.FinishTerminal(1)
	if tr.Spans() != nil || tr.Active() != 0 || tr.Evicted() != 0 {
		t.Fatal("nil tracer accessors not zero")
	}
	if _, ok := tr.FirstAttackOrigin(); ok {
		t.Fatal("nil tracer reported an attack origin")
	}
}
