package trace

import "ddoshield/internal/sim"

// TraceID identifies one traced packet's causal chain, from origin span to
// terminal delivery, drop, or IDS verdict. IDs are assigned sequentially in
// event order, so a fixed seed yields identical IDs run to run.
type TraceID uint64

// SpanID identifies one hop-level span within the tracer. Span IDs share a
// single sequence across traces so a span's ID alone is unambiguous.
type SpanID uint64

// Flow is the 5-tuple a trace is keyed by. Addresses are big-endian uint32
// IPv4 values (packet.Addr.Uint32 form) so the package stays independent of
// internal/packet and can in turn be imported by it.
type Flow struct {
	Src, Dst         uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// Kind classifies a trace's origin: benign application traffic, botnet
// attack traffic, or C2 control traffic.
type Kind uint8

// Trace kinds.
const (
	KindUnknown Kind = iota
	KindBenign
	KindAttack
	KindC2

	numKinds = 4
)

var kindNames = [numKinds]string{"unknown", "benign", "attack", "c2"}

// String renders the kind label used in metrics and trace output.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// ParseKind inverts Kind.String; unrecognized names map to KindUnknown.
func ParseKind(s string) Kind {
	for i, n := range kindNames {
		if n == s {
			return Kind(i)
		}
	}
	return KindUnknown
}

// DropCause tags a span terminated by a discard rather than a hand-off, one
// cause per discard point in netsim/netstack.
type DropCause uint8

// Drop causes.
const (
	DropNone          DropCause = iota
	DropLinkDown                // sent while the link was administratively down
	DropQueueFull               // drop-tail queue overflow
	DropLoss                    // random or impairment loss
	DropInFlightCut             // on the wire when the link went down
	DropPartition               // crossed a switch partition boundary
	DropIngressFilter           // rejected by a NIC ingress filter (firewall)
	DropUnattached              // sent on a NIC with no link (churn)
	DropMalformed               // failed Ethernet/IP/TCP/UDP dissection
	DropBadDst                  // addressed to a MAC/IP this host doesn't own
	DropSynBacklog              // SYN discarded by listener backlog pressure
	DropNoRoute                 // unroutable destination or ARP failure
	DropNoSocket                // no listener/socket on the destination port
	DropMitigated               // cut by the inline mitigation verdict cache

	numDropCauses = 14
)

var dropNames = [numDropCauses]string{
	"", "link-down", "queue-full", "loss", "inflight-cut", "partition",
	"ingress-filter", "unattached", "malformed", "bad-dst", "syn-backlog",
	"no-route", "no-socket", "mitigated",
}

// String renders the cause label used in metrics and trace output (empty
// for DropNone).
func (d DropCause) String() string {
	if int(d) < len(dropNames) {
		return dropNames[d]
	}
	return "unknown"
}

// ParseDropCause inverts DropCause.String; unrecognized names (and the
// empty string) map to DropNone.
func ParseDropCause(s string) DropCause {
	if s == "" {
		return DropNone
	}
	for i, n := range dropNames {
		if n == s {
			return DropCause(i)
		}
	}
	return DropNone
}

// Span is one finished hop of a trace: origin ("flood-syn", "tcp-tx", ...),
// "nic-tx", "link", "switch", "nic-rx", "deliver", or "ids-window". Spans
// form a chain/tree via Parent; the root span (Parent == 0) carries the
// flow 5-tuple as provenance for the whole trace.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // 0 for the origin span
	Name   string
	Actor  string
	Kind   Kind
	Flow   Flow // populated on root spans only
	Start  sim.Time
	End    sim.Time
	Drop   DropCause
	Tag    string // verdict tag ("alert"/"clear") or hop annotation
}

// Root reports whether s is a trace's origin span.
func (s Span) Root() bool { return s.Parent == 0 }

// Dropped reports whether the span ended in a discard.
func (s Span) Dropped() bool { return s.Drop != DropNone }

// Latency is the span's duration in simulated time.
func (s Span) Latency() sim.Time { return s.End - s.Start }
