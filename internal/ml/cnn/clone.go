package cnn

// Clone returns a deep copy of the network (weights and geometry). The
// federated-learning emulation clones the global model out to each client
// every round.
func (n *Network) Clone() *Network {
	c := &Network{Cfg: n.Cfg}
	c.geometry()
	c.W1 = cloneMat(n.W1)
	c.B1 = cloneVec(n.B1)
	c.W2 = cloneMat(n.W2)
	c.B2 = cloneVec(n.B2)
	c.W3 = cloneMat(n.W3)
	c.B3 = cloneVec(n.B3)
	c.W4 = cloneMat(n.W4)
	c.B4 = cloneVec(n.B4)
	return c
}

// SetWeightsFrom copies another network's weights into n (shapes must
// match; the federated server uses it to install the aggregated model).
func (n *Network) SetWeightsFrom(o *Network) {
	copyMat(n.W1, o.W1)
	copy(n.B1, o.B1)
	copyMat(n.W2, o.W2)
	copy(n.B2, o.B2)
	copyMat(n.W3, o.W3)
	copy(n.B3, o.B3)
	copyMat(n.W4, o.W4)
	copy(n.B4, o.B4)
}

// ScaleAccumulate adds scale*o's weights into n's weights — the FedAvg
// accumulation primitive. Call on a zeroed network.
func (n *Network) ScaleAccumulate(o *Network, scale float64) {
	accMat(n.W1, o.W1, scale)
	accVec(n.B1, o.B1, scale)
	accMat(n.W2, o.W2, scale)
	accVec(n.B2, o.B2, scale)
	accMat(n.W3, o.W3, scale)
	accVec(n.B3, o.B3, scale)
	accMat(n.W4, o.W4, scale)
	accVec(n.B4, o.B4, scale)
}

// ZeroWeights clears all weights (aggregation accumulator reset).
func (n *Network) ZeroWeights() {
	zeroMat(n.W1)
	zeroVec(n.B1)
	zeroMat(n.W2)
	zeroVec(n.B2)
	zeroMat(n.W3)
	zeroVec(n.B3)
	zeroMat(n.W4)
	zeroVec(n.B4)
}

func cloneMat(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = make([]float64, len(m[i]))
		copy(out[i], m[i])
	}
	return out
}

func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

func copyMat(dst, src [][]float64) {
	for i := range dst {
		copy(dst[i], src[i])
	}
}

func accMat(dst, src [][]float64, scale float64) {
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] += scale * src[i][j]
		}
	}
}

func accVec(dst, src []float64, scale float64) {
	for i := range dst {
		dst[i] += scale * src[i]
	}
}

func zeroMat(m [][]float64) {
	for i := range m {
		for j := range m[i] {
			m[i][j] = 0
		}
	}
}

func zeroVec(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
