package botnet

import (
	"strings"
	"testing"
	"time"

	"ddoshield/internal/netstack"
	"ddoshield/internal/sim"
)

// miniHTTPServer answers every request line with a tiny 200 response.
func miniHTTPServer(t *testing.T, h *netstack.Host) *netstack.Listener {
	t.Helper()
	l, err := h.ListenTCP(80, 0, func(c *netstack.Conn) {
		var buf strings.Builder
		c.OnData = func(d []byte) {
			buf.Write(d)
			if strings.Contains(buf.String(), "\r\n\r\n") {
				c.Send([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"))
				buf.Reset()
			}
		}
		c.OnRemoteClose = func() { c.Close() }
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestHTTPAttackTypeWire(t *testing.T) {
	if AttackHTTP.String() != "http" {
		t.Fatalf("String = %q", AttackHTTP.String())
	}
	at, err := ParseAttackType("HTTP")
	if err != nil || at != AttackHTTP {
		t.Fatalf("parse: %v %v", at, err)
	}
	cmd := Command{Type: AttackHTTP, Target: subnet.Host(0x0101), Port: 80, Duration: 10 * time.Second, PPS: 50}
	got, err := ParseCommand(cmd.String())
	if err != nil || got != cmd {
		t.Fatalf("round trip: %+v %v", got, err)
	}
}

func TestHTTPFloodIssuesRequests(t *testing.T) {
	r := newRig()
	bot := r.host(10)
	target := r.host(0x0100 + 1)
	miniHTTPServer(t, target)
	f := NewHTTPFlood(bot, sim.NewRNG(1), Command{
		Type: AttackHTTP, Target: target.Addr(), Port: 80,
		Duration: 3 * time.Second, PPS: 50,
	})
	done := false
	f.SetOnDone(func() { done = true })
	f.Start()
	if err := r.sched.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("flood never finished")
	}
	if f.Sent() < 120 || f.Sent() > 180 {
		t.Fatalf("requests = %d, want ~150", f.Sent())
	}
	if f.Completed() < f.Sent()/2 {
		t.Fatalf("completed %d of %d", f.Completed(), f.Sent())
	}
}

func TestHTTPFloodDefaultsPort80(t *testing.T) {
	r := newRig()
	f := NewHTTPFlood(r.host(11), sim.NewRNG(2), Command{Type: AttackHTTP, Duration: time.Second, PPS: 1})
	if f.cmd.Port != 80 {
		t.Fatalf("default port = %d", f.cmd.Port)
	}
}

func TestBotExecutesHTTPCommand(t *testing.T) {
	r := newRig()
	c2Host := r.host(2)
	c2 := NewC2(0)
	if err := c2.Attach(c2Host); err != nil {
		t.Fatal(err)
	}
	target := r.host(0x0100 + 1)
	miniHTTPServer(t, target)
	b := NewBot("hb", c2Host.Addr(), 0, subnet, 1)
	b.Attach(r.host(20))
	if err := r.sched.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	n := c2.Broadcast(Command{
		Type: AttackHTTP, Target: target.Addr(), Port: 80,
		Duration: 2 * time.Second, PPS: 30,
	})
	if n != 1 {
		t.Fatalf("broadcast reached %d", n)
	}
	if err := r.sched.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	attacks, sent := b.Stats()
	if attacks != 1 || sent == 0 {
		t.Fatalf("bot stats: attacks=%d sent=%d", attacks, sent)
	}
	// The interval was recorded with the bot's address.
	ivs := c2.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	if ivs[0].Cmd.Type != AttackHTTP || len(ivs[0].Bots) != 1 {
		t.Fatalf("interval = %+v", ivs[0])
	}
	if ivs[0].Bots[0] != (subnet.Host(20)) {
		t.Fatalf("bot addr = %v", ivs[0].Bots[0])
	}
}
