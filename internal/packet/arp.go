package packet

import (
	"encoding/binary"
	"fmt"
)

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPLen is the length of an IPv4-over-Ethernet ARP packet in bytes.
const ARPLen = 28

// ARP is an Address Resolution Protocol packet for IPv4 over Ethernet.
type ARP struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  Addr
	TargetMAC MAC
	TargetIP  Addr
}

// Marshal appends the wire encoding of the ARP packet to b.
func (a *ARP) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, 1)      // hardware type: Ethernet
	b = binary.BigEndian.AppendUint16(b, 0x0800) // protocol type: IPv4
	b = append(b, 6, 4)                          // address lengths
	b = binary.BigEndian.AppendUint16(b, a.Op)
	b = append(b, a.SenderMAC[:]...)
	b = append(b, a.SenderIP[:]...)
	b = append(b, a.TargetMAC[:]...)
	b = append(b, a.TargetIP[:]...)
	return b
}

// UnmarshalARP decodes an IPv4-over-Ethernet ARP packet.
func UnmarshalARP(b []byte) (ARP, error) {
	if len(b) < ARPLen {
		return ARP{}, fmt.Errorf("arp: packet too short (%d bytes)", len(b))
	}
	if ht := binary.BigEndian.Uint16(b[0:2]); ht != 1 {
		return ARP{}, fmt.Errorf("arp: unsupported hardware type %d", ht)
	}
	if pt := binary.BigEndian.Uint16(b[2:4]); pt != 0x0800 {
		return ARP{}, fmt.Errorf("arp: unsupported protocol type %#04x", pt)
	}
	var a ARP
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderMAC[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetMAC[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return a, nil
}
