package iforest

import (
	"testing"

	"ddoshield/internal/ml/mltest"
	"ddoshield/internal/sim"
)

// outlierData builds a dense benign cluster plus sparse far-away outliers.
func outlierData(n int, frac float64, seed int64) ([][]float64, []int) {
	rng := sim.NewRNG(seed)
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		x := make([]float64, 6)
		if rng.Float64() < frac {
			for j := range x {
				x[j] = rng.Uniform(8, 16) // far from the benign cluster
			}
			ys[i] = 1
		} else {
			for j := range x {
				x[j] = rng.NormFloat64()
			}
		}
		xs[i] = x
	}
	return xs, ys
}

func TestIForestSeparatesOutliers(t *testing.T) {
	xs, ys := outlierData(2000, 0.1, 1)
	m, err := Train(Config{Seed: 1}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := outlierData(500, 0.1, 2)
	if acc := mltest.Accuracy(m.Predict, testX, testY); acc < 0.9 {
		t.Fatalf("outlier accuracy = %.3f", acc)
	}
}

func TestScoresOrdered(t *testing.T) {
	xs, ys := outlierData(1000, 0.05, 3)
	m, err := Train(Config{Seed: 3}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	inlier := make([]float64, 6)
	outlier := []float64{12, 12, 12, 12, 12, 12}
	si, so := m.Score(inlier), m.Score(outlier)
	if so <= si {
		t.Fatalf("outlier score %v <= inlier score %v", so, si)
	}
	if si <= 0 || so >= 1 {
		t.Fatalf("scores out of range: %v %v", si, so)
	}
}

func TestContaminationOverride(t *testing.T) {
	xs, ys := outlierData(1000, 0.05, 4)
	strict, err := Train(Config{Seed: 4, Contamination: 0.01}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Train(Config{Seed: 4, Contamination: 0.3}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Threshold <= loose.Threshold {
		t.Fatalf("thresholds: strict=%v loose=%v", strict.Threshold, loose.Threshold)
	}
}

func TestIForestRejectsBadInput(t *testing.T) {
	if _, err := Train(Config{}, nil, nil); err == nil {
		t.Fatal("accepted empty set")
	}
	if _, err := Train(Config{}, [][]float64{{1}}, []int{0, 1}); err == nil {
		t.Fatal("accepted mismatch")
	}
}

func TestConstantDataDoesNotHang(t *testing.T) {
	xs := make([][]float64, 100)
	ys := make([]int, 100)
	for i := range xs {
		xs[i] = []float64{1, 1, 1}
	}
	m, err := Train(Config{Trees: 10, Seed: 5}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "iforest" || m.MemoryBytes() <= 0 {
		t.Fatal("metadata broken")
	}
	m.Predict([]float64{1, 1, 1}) // must not panic
}
