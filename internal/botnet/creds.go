// Package botnet reimplements the behaviour of the Mirai botnet used by
// DDoShield-IoT to generate malicious traffic: the attacker's telnet
// credential scanner, the loader that infects vulnerable devices, the
// command-and-control server, and the bots' SYN/ACK/UDP flood engines. The
// IDS never sees the malware binary — only its traffic — so a behavioural
// reimplementation that emits the same packet-level signatures (dictionary
// telnet probes, C2 keepalives, spoofed-source floods with randomized
// ports) preserves everything the paper's experiments measure.
package botnet

// Credential is one username/password pair from the scanner's dictionary.
type Credential struct {
	User string
	Pass string
}

// DefaultDictionary is a representative subset of the credential list
// hard-coded in the leaked Mirai source (scanner.c); the weak factory
// credentials of the device fleet are drawn from the same list, so a
// dictionary scan succeeds against vulnerable profiles exactly as the real
// malware's did.
var DefaultDictionary = []Credential{
	{"root", "xc3511"},
	{"root", "vizxv"},
	{"root", "admin"},
	{"admin", "admin"},
	{"root", "888888"},
	{"root", "xmhdipc"},
	{"root", "default"},
	{"root", "juantech"},
	{"root", "123456"},
	{"root", "54321"},
	{"support", "support"},
	{"root", ""},
	{"admin", "password"},
	{"root", "root"},
	{"root", "12345"},
	{"user", "user"},
	{"admin", ""},
	{"root", "pass"},
	{"admin", "admin1234"},
	{"root", "1111"},
	{"admin", "smcadmin"},
	{"admin", "1111"},
	{"root", "666666"},
	{"root", "password"},
	{"root", "1234"},
	{"root", "klv123"},
	{"Administrator", "admin"},
	{"service", "service"},
	{"supervisor", "supervisor"},
	{"guest", "guest"},
	{"guest", "12345"},
	{"admin1", "password"},
	{"administrator", "1234"},
	{"666666", "666666"},
	{"888888", "888888"},
	{"ubnt", "ubnt"},
	{"root", "klv1234"},
	{"root", "Zte521"},
	{"root", "hi3518"},
	{"root", "jvbzd"},
	{"root", "anko"},
	{"root", "zlxx."},
	{"root", "7ujMko0vizxv"},
	{"root", "7ujMko0admin"},
	{"root", "system"},
	{"root", "ikwb"},
	{"root", "dreambox"},
	{"root", "user"},
	{"root", "realtek"},
	{"root", "00000000"},
	{"admin", "1111111"},
	{"admin", "1234"},
	{"admin", "12345"},
	{"admin", "54321"},
	{"admin", "123456"},
	{"admin", "7ujMko0admin"},
	{"admin", "pass"},
	{"admin", "meinsm"},
	{"tech", "tech"},
	{"mother", "fucker"},
}
