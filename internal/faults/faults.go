// Package faults is the deterministic fault-injection engine of the
// testbed: a Plan is a clock-aligned timeline of fault events (link flaps,
// link impairments, switch partitions, container crashes and crash loops)
// and an Injector applies them on the simulation scheduler. Every random
// draw comes from seeded sim.RNG substreams, so a run with the same seed
// and the same plan reproduces bit-for-bit — the property the resilience
// experiments and the determinism regression tests rely on.
//
// The design follows the reproducible failure-scenario discipline of the
// Gotham testbed and the stress-condition methodology of lean IoT-cloud
// simulation frameworks: faults are data (a Plan), not ad-hoc goroutines,
// so scenarios can be generated, persisted and replayed.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"ddoshield/internal/netsim"
	"ddoshield/internal/sim"
)

// Kind identifies a fault type.
type Kind string

// Fault kinds.
const (
	// LinkFlap cuts each target's uplink, restoring it after Duration.
	LinkFlap Kind = "link-flap"
	// LinkImpair applies Impair to each target's uplink for Duration
	// (0 = until the end of the run), then restores what was there before.
	LinkImpair Kind = "link-impair"
	// Partition splits the switch into isolated groups for Duration.
	Partition Kind = "partition"
	// Crash kills each target container once; its restart policy decides
	// what happens next.
	Crash Kind = "crash"
	// CrashLoop kills each target container at Every intervals for
	// Duration, crashing it again as soon as its supervisor revives it.
	CrashLoop Kind = "crash-loop"
)

// Kinds lists every fault kind, in a fixed order, for exhaustive
// enumeration (e.g. registering one injection counter per kind).
func Kinds() []Kind {
	return []Kind{LinkFlap, LinkImpair, Partition, Crash, CrashLoop}
}

// Event is one timeline entry of a fault plan.
type Event struct {
	// At is the injection instant, relative to Injector.Schedule.
	At time.Duration
	// Duration bounds reversible faults (flap outage, impairment window,
	// partition window, crash-loop window).
	Duration time.Duration
	// Every paces CrashLoop re-kills (default 1 s).
	Every time.Duration
	// Kind selects the fault type.
	Kind Kind
	// Targets names the containers to hit. Exact names, a trailing-*
	// prefix glob ("dev*"), or empty for every registered target.
	Targets []string
	// Impair carries the LinkImpair settings. A nil Impair.RNG is filled
	// with a per-link substream by the injector, keeping runs reproducible
	// without the plan author threading RNGs around.
	Impair netsim.Impairments
	// Groups carries the Partition layout: each element is one side of
	// the partition (same name syntax as Targets). Targets not named in
	// any group keep full connectivity with group 0.
	Groups [][]string
}

// Plan is a clock-aligned timeline of fault events.
type Plan struct {
	Events []Event
}

// Add appends an event and returns the plan for chaining.
func (p *Plan) Add(e Event) *Plan {
	p.Events = append(p.Events, e)
	return p
}

// Empty reports whether the plan schedules nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Kinds returns the distinct fault kinds the plan uses, sorted.
func (p Plan) Kinds() []Kind {
	seen := map[Kind]bool{}
	for _, e := range p.Events {
		seen[e.Kind] = true
	}
	out := make([]Kind, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RandomConfig parameterizes Random plan generation.
type RandomConfig struct {
	// Seed drives every placement and sizing draw.
	Seed int64
	// Start and Window bound the interval faults are placed in; events
	// land in [Start, Start+0.8*Window] so their effects fit the run.
	Start  time.Duration
	Window time.Duration
	// Intensity in [0, 1] scales both event counts and impairment
	// probabilities; 0 yields an empty plan.
	Intensity float64
	// Targets are the candidate victims (default: the "dev*" glob).
	Targets []string
	// Kinds enables fault types (default: LinkFlap, LinkImpair, CrashLoop).
	Kinds []Kind
}

// Random builds a reproducible plan whose expected fault counts scale with
// Intensity: at full intensity roughly four flaps, three impairment
// windows, three crash loops and one partition per window.
func Random(cfg RandomConfig) Plan {
	var p Plan
	if cfg.Intensity <= 0 || cfg.Window <= 0 {
		return p
	}
	if cfg.Intensity > 1 {
		cfg.Intensity = 1
	}
	if len(cfg.Targets) == 0 {
		cfg.Targets = []string{"dev*"}
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []Kind{LinkFlap, LinkImpair, CrashLoop}
	}
	rng := sim.Substream(cfg.Seed, "faults/random-plan")
	span := time.Duration(float64(cfg.Window) * 0.8)
	place := func() time.Duration {
		return cfg.Start + time.Duration(rng.Uniform(0, float64(span)))
	}
	hold := func(lo, hi time.Duration) time.Duration {
		return time.Duration(rng.Uniform(float64(lo), float64(hi)))
	}
	count := func(base float64) int {
		return int(math.Ceil(base * cfg.Intensity))
	}
	pick := func() []string { return []string{sim.Pick(rng, cfg.Targets)} }
	for _, k := range cfg.Kinds {
		switch k {
		case LinkFlap:
			for i := 0; i < count(4); i++ {
				p.Add(Event{Kind: LinkFlap, At: place(), Duration: hold(time.Second, 5*time.Second), Targets: pick()})
			}
		case LinkImpair:
			for i := 0; i < count(3); i++ {
				p.Add(Event{
					Kind: LinkImpair, At: place(), Duration: hold(5*time.Second, 15*time.Second),
					Targets: pick(),
					Impair: netsim.Impairments{
						LossProb:    0.02 * cfg.Intensity,
						CorruptProb: 0.05 * cfg.Intensity,
						DupProb:     0.02 * cfg.Intensity,
						ReorderProb: 0.05 * cfg.Intensity,
					},
				})
			}
		case CrashLoop:
			for i := 0; i < count(3); i++ {
				p.Add(Event{
					Kind: CrashLoop, At: place(), Duration: hold(5*time.Second, 10*time.Second),
					Every: time.Second, Targets: pick(),
				})
			}
		case Crash:
			for i := 0; i < count(3); i++ {
				p.Add(Event{Kind: Crash, At: place(), Targets: pick()})
			}
		case Partition:
			for i := 0; i < count(1); i++ {
				// Split the candidate set into two deterministic halves.
				names := append([]string(nil), cfg.Targets...)
				rng.Shuffle(len(names), func(a, b int) { names[a], names[b] = names[b], names[a] })
				half := (len(names) + 1) / 2
				p.Add(Event{
					Kind: Partition, At: place(), Duration: hold(5*time.Second, 10*time.Second),
					Groups: [][]string{names[:half], names[half:]},
				})
			}
		}
	}
	// Timeline order (stable on ties) keeps plan dumps readable and the
	// injection sequence independent of the Kinds order above.
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}

// String renders the plan as one line per event, in timeline order.
func (p Plan) String() string {
	var b strings.Builder
	for _, e := range p.Events {
		fmt.Fprintf(&b, "%8s %-11s dur=%-6s targets=%v", e.At, e.Kind, e.Duration, e.Targets)
		if e.Kind == Partition {
			fmt.Fprintf(&b, " groups=%v", e.Groups)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
