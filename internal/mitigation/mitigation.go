// Package mitigation closes the detection→response loop — the "shield" in
// DDoShield: an inline firewall at a NIC's ingress built around an
// allocation-free per-flow verdict cache, and a Responder that converts
// the Real-Time IDS Unit's per-window verdicts into time-limited rules.
// DDoSim's §III-A positions its experiments as "benchmarks for evaluating
// the effectiveness of defense mechanisms, ranging from intrusion
// detection systems to traffic filtering and mitigation techniques"; this
// package implements the filtering half and meters it: every counter is a
// shared telemetry instance, every drop can carry a causal-trace span, and
// cache aging runs deterministically on the owning domain's scheduler.
package mitigation

import (
	"time"

	"ddoshield/internal/ids"
	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
	"ddoshield/internal/telemetry/trace"
)

// Rule kinds recorded in verdict-cache entries so per-rule hit counters
// attribute every drop to the rule class that installed the verdict.
const (
	ruleNone uint8 = iota
	ruleAddr
	rulePrefix
	ruleFlow
)

// FirewallConfig tunes the inline stage. The zero value is usable.
type FirewallConfig struct {
	// CacheSize is the verdict-cache capacity, rounded up to a power of
	// two (default 1024).
	CacheSize int
	// FlowTTL bounds how long any cached verdict lives before the flow is
	// re-evaluated against the rule tables (default 5 s).
	FlowTTL time.Duration
	// SweepInterval is the deterministic aging cadence: every interval the
	// owning scheduler retires expired cache entries so table occupancy
	// and the age histogram do not depend on packet arrivals (default 1 s;
	// negative disables the sweep, leaving lazy aging only).
	SweepInterval time.Duration
	// Classify is the ground-truth flow oracle (the testbed supplies its
	// trace-kind classifier). When set, drops split into collateral
	// (benign) and attack counters, admitted attack frames feed the
	// residual-throughput counter, and time-to-mitigate anchors on the
	// first attack-classified drop.
	Classify func(trace.Flow) trace.Kind
	// Registry, when set, exports the firewall's counters under
	// mitigation_* metric names.
	Registry *telemetry.Registry
	// Name labels metrics and the mitigation hop's span actor
	// (default "fw").
	Name string
}

func (c FirewallConfig) withDefaults() FirewallConfig {
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.FlowTTL <= 0 {
		c.FlowTTL = 5 * time.Second
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = time.Second
	}
	if c.Name == "" {
		c.Name = "fw"
	}
	return c
}

// flowRule is one authoritative per-flow verdict installed by the
// Responder; the cache memoizes it like any other rule.
type flowRule struct {
	verdict Verdict
	keep    uint32
	expiry  sim.Time
}

// prefixRule is one aggregated source-prefix block. Rules live in a slice
// kept sorted by (address, bits): evaluation order — and therefore which
// rule a cached verdict's expiry derives from — never depends on map
// iteration order.
type prefixRule struct {
	prefix packet.Prefix
	expiry sim.Time
}

// Firewall drops frames from blocked sources before the protected host's
// stack sees them. The hot path consults the verdict cache first; a miss
// evaluates flow, then address, then prefix rules and memoizes the result.
// Rules expire after a TTL so false positives heal, and every rule change
// bumps a revision that invalidates all memoized verdicts at once.
type Firewall struct {
	sched *sim.Scheduler
	nic   *netsim.NIC
	cfg   FirewallConfig

	cache  *verdictCache
	rev    uint32
	ticker *sim.Ticker

	addrs    map[packet.Addr]sim.Time // addr → expiry
	prefixes []prefixRule             // sorted by (addr, bits)
	flows    map[flowKey]flowRule

	// Shared telemetry counters (the PR 3 pattern): the registry exports
	// these same instances and Stats() is a thin value adapter, so there
	// is exactly one source of truth per count.
	evaluated   telemetry.Counter
	dropped     telemetry.Counter
	rateLimited telemetry.Counter
	// Classify-attributed accounting: benign frames wrongly dropped
	// (collateral damage), attack frames dropped (the defense working) and
	// attack frames still admitted (residual attack throughput).
	collateralDrops telemetry.Counter
	attackDrops     telemetry.Counter
	attackPassed    telemetry.Counter
	// Per-rule-kind drop attribution.
	ruleHitsAddr   telemetry.Counter
	ruleHitsPrefix telemetry.Counter
	ruleHitsFlow   telemetry.Counter

	// firstMitigated is the time-to-mitigate end anchor: the first drop of
	// an attack-classified frame (any frame when no classifier is set).
	firstMitigated     sim.Time
	haveFirstMitigated bool
}

// NewFirewall installs a firewall with default configuration on nic's
// ingress path. sched must be the scheduler of nic's owning domain.
func NewFirewall(sched *sim.Scheduler, nic *netsim.NIC) *Firewall {
	return NewFirewallConfig(sched, nic, FirewallConfig{})
}

// NewFirewallConfig installs a configured firewall on nic's ingress path.
// sched must be the scheduler of nic's owning domain: rule installs,
// packet evaluation and the aging sweep all mutate state there, which is
// what keeps partitioned campaigns byte-identical.
func NewFirewallConfig(sched *sim.Scheduler, nic *netsim.NIC, cfg FirewallConfig) *Firewall {
	cfg = cfg.withDefaults()
	fw := &Firewall{
		sched: sched,
		nic:   nic,
		cfg:   cfg,
		addrs: make(map[packet.Addr]sim.Time),
		flows: make(map[flowKey]flowRule),
	}
	l := telemetry.L("fw", cfg.Name)
	reg := cfg.Registry
	fw.cache = newVerdictCache(cfg.CacheSize, reg.NewHistogram("mitigation_cache_age_us", cacheAgeBounds, l))
	reg.RegisterCounter(&fw.evaluated, "mitigation_frames_evaluated_total", l)
	reg.RegisterCounter(&fw.dropped, "mitigation_frames_dropped_total", l)
	reg.RegisterCounter(&fw.rateLimited, "mitigation_frames_rate_limited_total", l)
	reg.RegisterCounter(&fw.collateralDrops, "mitigation_collateral_drops_total", l)
	reg.RegisterCounter(&fw.attackDrops, "mitigation_attack_drops_total", l)
	reg.RegisterCounter(&fw.attackPassed, "mitigation_attack_passed_total", l)
	reg.RegisterCounter(&fw.ruleHitsAddr, "mitigation_rule_hits_total", l, telemetry.L("rule", "addr"))
	reg.RegisterCounter(&fw.ruleHitsPrefix, "mitigation_rule_hits_total", l, telemetry.L("rule", "prefix"))
	reg.RegisterCounter(&fw.ruleHitsFlow, "mitigation_rule_hits_total", l, telemetry.L("rule", "flow"))
	reg.RegisterCounter(&fw.cache.hits, "mitigation_cache_hits_total", l)
	reg.RegisterCounter(&fw.cache.misses, "mitigation_cache_misses_total", l)
	reg.RegisterCounter(&fw.cache.inserts, "mitigation_cache_inserts_total", l)
	reg.RegisterCounter(&fw.cache.evictions, "mitigation_cache_evictions_total", l)
	reg.RegisterCounter(&fw.cache.expirations, "mitigation_cache_expired_total", l)
	reg.RegisterGaugeFunc(func() float64 {
		return float64(fw.cache.size(fw.sched.Now(), fw.rev))
	}, "mitigation_cache_entries", l)
	if cfg.SweepInterval > 0 {
		fw.ticker = sched.Every(cfg.SweepInterval, func() {
			fw.cache.sweep(fw.sched.Now(), fw.rev)
		})
	}
	nic.SetIngressFilterCtx(fw.admit)
	return fw
}

// Detach removes the firewall from the NIC and stops its aging sweep.
func (fw *Firewall) Detach() {
	fw.nic.SetIngressFilterCtx(nil)
	if fw.ticker != nil {
		fw.ticker.Stop()
		fw.ticker = nil
	}
}

// bumpRev invalidates every memoized verdict: the cached decisions were
// computed against a rule set that no longer exists.
func (fw *Firewall) bumpRev() { fw.rev++ }

// BlockAddr drops traffic from a single source for ttl.
func (fw *Firewall) BlockAddr(a packet.Addr, ttl time.Duration) {
	fw.addrs[a] = fw.sched.Now().Add(ttl)
	fw.bumpRev()
}

// BlockPrefix drops traffic from a whole prefix for ttl — the aggregated
// rule spoofed-source floods require (blocking millions of forged
// addresses individually is not a real-world option).
func (fw *Firewall) BlockPrefix(p packet.Prefix, ttl time.Duration) {
	exp := fw.sched.Now().Add(ttl)
	for i := range fw.prefixes {
		pr := &fw.prefixes[i]
		if pr.prefix == p {
			pr.expiry = exp
			fw.bumpRev()
			return
		}
		if pr.prefix.Addr.Uint32() > p.Addr.Uint32() ||
			(pr.prefix.Addr == p.Addr && pr.prefix.Bits > p.Bits) {
			fw.prefixes = append(fw.prefixes, prefixRule{})
			copy(fw.prefixes[i+1:], fw.prefixes[i:])
			fw.prefixes[i] = prefixRule{prefix: p, expiry: exp}
			fw.bumpRev()
			return
		}
	}
	fw.prefixes = append(fw.prefixes, prefixRule{prefix: p, expiry: exp})
	fw.bumpRev()
}

// InstallFlowVerdicts installs one verdict for every given 5-tuple under a
// single rule revision and pre-warms the verdict cache with them — the
// Responder's direct population path. keep is the rate-limit pass modulus
// (ignored unless v is VerdictRateLimit).
func (fw *Firewall) InstallFlowVerdicts(flows []trace.Flow, v Verdict, keep uint32, ttl time.Duration) {
	if len(flows) == 0 {
		return
	}
	now := fw.sched.Now()
	exp := now.Add(ttl)
	for _, f := range flows {
		fw.flows[keyOfFlow(f)] = flowRule{verdict: v, keep: keep, expiry: exp}
	}
	fw.bumpRev()
	for _, f := range flows {
		e := fw.cache.insert(keyOfFlow(f), v, keep, fw.rev, now, fw.capExpiry(exp, now))
		setRule(e, ruleFlow)
	}
}

// keyOfFlow packs a trace.Flow into the cache key form.
func keyOfFlow(f trace.Flow) flowKey {
	return flowKey{
		src:   f.Src,
		dst:   f.Dst,
		ports: uint32(f.SrcPort)<<16 | uint32(f.DstPort),
		proto: f.Proto,
	}
}

// flowOfKey is keyOfFlow's inverse, for classification and tracing.
func flowOfKey(k flowKey) trace.Flow {
	return trace.Flow{
		Src:     k.src,
		Dst:     k.dst,
		SrcPort: uint16(k.ports >> 16),
		DstPort: uint16(k.ports),
		Proto:   k.proto,
	}
}

// capExpiry bounds a cached verdict's lifetime by FlowTTL so the cache
// ages even under long-lived rules.
func (fw *Firewall) capExpiry(ruleExp, now sim.Time) sim.Time {
	bound := now.Add(fw.cfg.FlowTTL)
	if ruleExp < bound {
		return ruleExp
	}
	return bound
}

// BlockedAddrs reports currently active single-address rules.
func (fw *Firewall) BlockedAddrs() int {
	n := 0
	now := fw.sched.Now()
	for _, exp := range fw.addrs {
		if exp > now {
			n++
		}
	}
	return n
}

// BlockedPrefixes reports currently active prefix rules.
func (fw *Firewall) BlockedPrefixes() int {
	n := 0
	now := fw.sched.Now()
	for _, pr := range fw.prefixes {
		if pr.expiry > now {
			n++
		}
	}
	return n
}

// BlockedFlows reports currently active per-flow verdicts.
func (fw *Firewall) BlockedFlows() int {
	n := 0
	now := fw.sched.Now()
	for _, fr := range fw.flows {
		if fr.expiry > now {
			n++
		}
	}
	return n
}

// Stats reports frames evaluated and dropped — a thin adapter over the
// shared telemetry counters the registry exports.
func (fw *Firewall) Stats() (evaluated, dropped uint64) {
	return fw.evaluated.Value(), fw.dropped.Value()
}

// CollateralDrops reports benign frames wrongly dropped (0 without a
// classifier).
func (fw *Firewall) CollateralDrops() uint64 { return fw.collateralDrops.Value() }

// AttackDrops reports attack-classified frames dropped.
func (fw *Firewall) AttackDrops() uint64 { return fw.attackDrops.Value() }

// AttackPassed reports attack-classified frames the firewall admitted —
// the residual attack throughput's numerator.
func (fw *Firewall) AttackPassed() uint64 { return fw.attackPassed.Value() }

// RateLimited reports frames dropped by rate-limit verdicts (a subset of
// Stats' dropped count).
func (fw *Firewall) RateLimited() uint64 { return fw.rateLimited.Value() }

// RuleHits reports cumulative drops attributed to each rule kind.
func (fw *Firewall) RuleHits() (addr, prefix, flow uint64) {
	return fw.ruleHitsAddr.Value(), fw.ruleHitsPrefix.Value(), fw.ruleHitsFlow.Value()
}

// CacheStats snapshots the verdict cache.
func (fw *Firewall) CacheStats() CacheStats {
	return CacheStats{
		Size:      fw.cache.size(fw.sched.Now(), fw.rev),
		Capacity:  len(fw.cache.entries),
		Hits:      fw.cache.hits.Value(),
		Misses:    fw.cache.misses.Value(),
		Inserts:   fw.cache.inserts.Value(),
		Evictions: fw.cache.evictions.Value(),
		Expired:   fw.cache.expirations.Value(),
	}
}

// FirstMitigatedDrop reports when the firewall first dropped an
// attack-classified frame (any frame without a classifier) — the
// time-to-mitigate end anchor — and whether that has happened.
func (fw *Firewall) FirstMitigatedDrop() (sim.Time, bool) {
	return fw.firstMitigated, fw.haveFirstMitigated
}

// Name reports the firewall's telemetry label.
func (fw *Firewall) Name() string { return fw.cfg.Name }

// setRule stores the rule-kind attribution in a cache entry; split out so
// InstallFlowVerdicts and the miss path stay in sync.
func setRule(e *entry, kind uint8) { e.rule = kind }

// admit is the ingress hot path: parse the 5-tuple at fixed offsets,
// consult the verdict cache, fall back to the rule tables on a miss and
// memoize the result. Allocation-free in both outcomes (pinned by
// TestMitigationIngressAllocFree). Non-IP frames (ARP) always pass, as a
// network-layer ACL would let them.
func (fw *Firewall) admit(raw []byte, tc trace.Context) bool {
	fw.evaluated.Inc()
	eth, rest, err := packet.UnmarshalEthernet(raw)
	if err != nil || eth.Type != packet.EtherTypeIPv4 || len(rest) < packet.IPv4HeaderLen {
		return true
	}
	// Fast path: source, destination and protocol sit at fixed offsets;
	// ports follow the (variable) header, read only for TCP/UDP.
	k := flowKey{
		src:   uint32(rest[12])<<24 | uint32(rest[13])<<16 | uint32(rest[14])<<8 | uint32(rest[15]),
		dst:   uint32(rest[16])<<24 | uint32(rest[17])<<16 | uint32(rest[18])<<8 | uint32(rest[19]),
		proto: rest[9],
	}
	if k.proto == packet.ProtoTCP || k.proto == packet.ProtoUDP {
		ihl := int(rest[0]&0x0f) * 4
		if len(rest) >= ihl+4 {
			k.ports = uint32(rest[ihl])<<24 | uint32(rest[ihl+1])<<16 |
				uint32(rest[ihl+2])<<8 | uint32(rest[ihl+3])
		}
	}
	now := fw.sched.Now()
	e := fw.cache.lookup(k, now, fw.rev)
	if e == nil {
		v, keep, kind, exp := fw.evalRules(k, now)
		e = fw.cache.insert(k, v, keep, fw.rev, now, exp)
		setRule(e, kind)
	}
	switch e.verdict {
	case VerdictDrop:
		fw.recordDrop(e, k, now, tc, false)
		return false
	case VerdictRateLimit:
		e.count++
		if e.keep > 1 && e.count%e.keep == 1 {
			break // pass one frame in every keep
		}
		fw.recordDrop(e, k, now, tc, true)
		return false
	}
	if fw.cfg.Classify != nil && fw.cfg.Classify(flowOfKey(k)) == trace.KindAttack {
		fw.attackPassed.Inc()
	}
	return true
}

// evalRules is the cache-miss slow path: flow verdicts first (most
// specific), then address rules, then the sorted prefix rules. Expired
// rules encountered on the way are removed. Returns the verdict, the
// rate-limit modulus, the attributing rule kind and the cached entry's
// expiry.
func (fw *Firewall) evalRules(k flowKey, now sim.Time) (Verdict, uint32, uint8, sim.Time) {
	if fr, ok := fw.flows[k]; ok {
		if fr.expiry > now {
			return fr.verdict, fr.keep, ruleFlow, fw.capExpiry(fr.expiry, now)
		}
		delete(fw.flows, k)
	}
	var src packet.Addr
	src[0], src[1], src[2], src[3] = byte(k.src>>24), byte(k.src>>16), byte(k.src>>8), byte(k.src)
	if exp, ok := fw.addrs[src]; ok {
		if exp > now {
			return VerdictDrop, 0, ruleAddr, fw.capExpiry(exp, now)
		}
		delete(fw.addrs, src)
	}
	for i := 0; i < len(fw.prefixes); {
		pr := fw.prefixes[i]
		if pr.expiry <= now {
			copy(fw.prefixes[i:], fw.prefixes[i+1:])
			fw.prefixes = fw.prefixes[:len(fw.prefixes)-1]
			continue
		}
		if pr.prefix.Contains(src) {
			return VerdictDrop, 0, rulePrefix, fw.capExpiry(pr.expiry, now)
		}
		i++
	}
	return VerdictAllow, 0, ruleNone, now.Add(fw.cfg.FlowTTL)
}

// recordDrop books one dropped frame: total and rate-limit counters,
// per-rule attribution, collateral vs attack classification, the
// time-to-mitigate anchor, and — for sampled flows — the "mitigation" hop
// span terminating the causal chain with DropMitigated.
func (fw *Firewall) recordDrop(e *entry, k flowKey, now sim.Time, tc trace.Context, limited bool) {
	fw.dropped.Inc()
	if limited {
		fw.rateLimited.Inc()
	}
	switch e.rule {
	case ruleAddr:
		fw.ruleHitsAddr.Inc()
	case rulePrefix:
		fw.ruleHitsPrefix.Inc()
	case ruleFlow:
		fw.ruleHitsFlow.Inc()
	}
	if fw.cfg.Classify != nil {
		if fw.cfg.Classify(flowOfKey(k)) == trace.KindBenign {
			fw.collateralDrops.Inc()
		} else {
			fw.attackDrops.Inc()
			if !fw.haveFirstMitigated {
				fw.haveFirstMitigated = true
				fw.firstMitigated = now
			}
		}
	} else if !fw.haveFirstMitigated {
		fw.haveFirstMitigated = true
		fw.firstMitigated = now
	}
	if tc.Sampled() {
		tc.Start(now, "mitigation", fw.cfg.Name).Drop(now, trace.DropMitigated)
	}
}

// ResponderConfig tunes the IDS-driven response policy.
type ResponderConfig struct {
	// BlockTTL is how long rules last (default 30 s).
	BlockTTL time.Duration
	// AggregateThreshold collapses per-address rules into a /24 block when
	// at least this many flagged sources share the /24 (default 8) — the
	// defense against spoofed-source floods.
	AggregateThreshold int
	// MaxAddrRules caps individual address rules per window (default 64).
	MaxAddrRules int
	// MaxFlowRules caps per-flow verdicts per window (default 256).
	MaxFlowRules int
	// ReactionDelay models the control-plane lag between an IDS alert and
	// the rules actually landing at the firewall (default 0: same-instant
	// install). The delayed install runs on the firewall's scheduler, so
	// it is deterministic under any Domains setting.
	ReactionDelay time.Duration
	// RateLimitKeep, when > 1, installs rate-limit verdicts passing one
	// frame in every RateLimitKeep for flagged flows instead of hard
	// drops (0 or 1 = drop).
	RateLimitKeep int
	// Protected lists addresses never to block (the infrastructure).
	Protected []packet.Addr
	// Registry, when set, exports the responder's counters under
	// mitigation_responder_* metric names.
	Registry *telemetry.Registry
	// Name labels this responder's telemetry (default "responder").
	Name string
}

func (c ResponderConfig) withDefaults() ResponderConfig {
	if c.BlockTTL <= 0 {
		c.BlockTTL = 30 * time.Second
	}
	if c.AggregateThreshold <= 0 {
		c.AggregateThreshold = 8
	}
	if c.MaxAddrRules <= 0 {
		c.MaxAddrRules = 64
	}
	if c.MaxFlowRules <= 0 {
		c.MaxFlowRules = 256
	}
	if c.Name == "" {
		c.Name = "responder"
	}
	return c
}

// Responder converts IDS window verdicts into firewall rules. Wire it via
// ids.Config.OnWindow or ids.Unit.AddWindowHook.
type Responder struct {
	cfg ResponderConfig
	fw  *Firewall

	alertsHandled telemetry.Counter
	addrRules     telemetry.Counter
	prefixRules   telemetry.Counter
	flowRules     telemetry.Counter
}

// NewResponder returns a responder driving fw.
func NewResponder(fw *Firewall, cfg ResponderConfig) *Responder {
	r := &Responder{cfg: cfg.withDefaults(), fw: fw}
	l := telemetry.L("responder", r.cfg.Name)
	reg := r.cfg.Registry
	reg.RegisterCounter(&r.alertsHandled, "mitigation_responder_alerts_total", l)
	reg.RegisterCounter(&r.addrRules, "mitigation_responder_rules_total", l, telemetry.L("rule", "addr"))
	reg.RegisterCounter(&r.prefixRules, "mitigation_responder_rules_total", l, telemetry.L("rule", "prefix"))
	reg.RegisterCounter(&r.flowRules, "mitigation_responder_rules_total", l, telemetry.L("rule", "flow"))
	return r
}

// Stats reports alerts acted on and rules installed — thin adapters over
// the shared telemetry counters.
func (r *Responder) Stats() (alerts, addrRules, prefixRules uint64) {
	return r.alertsHandled.Value(), r.addrRules.Value(), r.prefixRules.Value()
}

// FlowRules reports per-flow verdicts installed.
func (r *Responder) FlowRules() uint64 { return r.flowRules.Value() }

// HandleWindow implements the ids window-hook contract: on an alert window
// it blocks the flagged sources (aggregating dense /24s into prefix
// rules) and installs per-flow verdicts for the flagged 5-tuples, after
// the configured reaction delay.
func (r *Responder) HandleWindow(w *ids.WindowResult) {
	if !w.Alert || (len(w.FlaggedSrcs) == 0 && len(w.FlaggedFlows) == 0) {
		return
	}
	r.alertsHandled.Inc()
	if r.cfg.ReactionDelay <= 0 {
		r.install(w.FlaggedSrcs, w.FlaggedFlows)
		return
	}
	// The WindowResult's slices are owned by the unit's results log and
	// never mutated after the hook, so the deferred install may reference
	// them directly.
	srcs, flows := w.FlaggedSrcs, w.FlaggedFlows
	r.fw.sched.After(r.cfg.ReactionDelay, func() {
		r.install(srcs, flows)
	})
}

// install materializes one alert window's rules. Sources are processed in
// flagged (first-seen) order with aggregation counts computed up front, so
// the installed rule sequence is deterministic — never a map iteration.
func (r *Responder) install(srcs []packet.Addr, flows []trace.Flow) {
	per24 := make(map[packet.Addr]int, len(srcs))
	for _, src := range srcs {
		if r.protected(src) {
			continue
		}
		per24[base24(src)]++
	}
	blocked := make(map[packet.Addr]bool)
	installed := 0
	for _, src := range srcs {
		if r.protected(src) {
			continue
		}
		base := base24(src)
		if per24[base] >= r.cfg.AggregateThreshold {
			if !blocked[base] {
				blocked[base] = true
				r.fw.BlockPrefix(packet.Prefix{Addr: base, Bits: 24}, r.cfg.BlockTTL)
				r.prefixRules.Inc()
			}
			continue
		}
		if installed >= r.cfg.MaxAddrRules {
			continue
		}
		r.fw.BlockAddr(src, r.cfg.BlockTTL)
		r.addrRules.Inc()
		installed++
	}
	if len(flows) == 0 {
		return
	}
	verdict, keep := VerdictDrop, uint32(0)
	if r.cfg.RateLimitKeep > 1 {
		verdict, keep = VerdictRateLimit, uint32(r.cfg.RateLimitKeep)
	}
	batch := make([]trace.Flow, 0, min(len(flows), r.cfg.MaxFlowRules))
	for _, f := range flows {
		if len(batch) >= r.cfg.MaxFlowRules {
			break
		}
		if r.protected(packet.AddrFromUint32(f.Src)) {
			continue
		}
		batch = append(batch, f)
	}
	r.fw.InstallFlowVerdicts(batch, verdict, keep, r.cfg.BlockTTL)
	r.flowRules.Add(uint64(len(batch)))
}

// base24 is the /24 base of an address.
func base24(a packet.Addr) packet.Addr {
	return packet.AddrFrom4(a[0], a[1], a[2], 0)
}

func (r *Responder) protected(a packet.Addr) bool {
	for _, p := range r.cfg.Protected {
		if p == a {
			return true
		}
	}
	return false
}
