// Command benchperf runs the hot-path microbenchmarks programmatically and
// emits a machine-readable JSON report — the artifact CI and EXPERIMENTS.md
// track for the allocation-free scheduler, the pooled packet pipeline and
// the window extractor:
//
//	benchperf                       run the core benchmarks, write BENCH_scheduler.json
//	benchperf -out path.json        choose the output path
//	benchperf -sweep                also run the (slow) parallel resilience sweep
//	benchperf -pdes                 run the serial-vs-parallel engine benchmark,
//	                                write BENCH_pdes.json
//	benchperf -pdes -pdes-scale 1000,10000,100000
//	                                also sweep fleet sizes and report heap bytes
//	                                per device and devices-per-wall-second
//	benchperf -mitigation           run the closed-loop mitigation sweep
//	                                (threshold × cache size × reaction delay),
//	                                write BENCH_mitigation.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"ddoshield/internal/experiments"
	"ddoshield/internal/features"
	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry/prof"
)

// Result is one benchmark's headline numbers.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Report is the emitted JSON document.
type Report struct {
	GoMaxProcs int      `json:"gomaxprocs"`
	GoVersion  string   `json:"go_version"`
	Benchmarks []Result `json:"benchmarks"`
}

func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

var noop sim.Handler = func() {}

func benchScheduler(b *testing.B) {
	s := sim.NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, noop)
		s.Step()
	}
}

func benchSchedulerCancel(b *testing.B) {
	s := sim.NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := s.After(time.Microsecond, noop)
		ev.Cancel()
	}
}

func benchPacketRoundtrip(b *testing.B) {
	src, dst := packet.MACFromUint64(1), packet.MACFromUint64(2)
	ip := packet.IPv4{Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(10, 0, 0, 2), TTL: 64}
	tcp := packet.TCP{SrcPort: 40000, DstPort: 80, Seq: 1234, Flags: packet.FlagSYN, Window: 65535}
	payload := []byte("GET / HTTP/1.1\r\n\r\n")
	buf := make([]byte, 0, 128)
	p := packet.Acquire()
	defer p.Release()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = packet.AppendTCP(buf[:0], src, dst, ip, tcp, payload)
		if err := packet.DecodeInto(p, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchExtractorWindow(b *testing.B) {
	e := features.NewExtractor(time.Second, func(w *features.Window) {})
	window := func(i int) {
		base := sim.Time(i) * sim.Second
		for j := 0; j < 1000; j++ {
			e.Add(features.Basic{
				Time:    base + sim.Time(j)*sim.Millisecond,
				Src:     packet.AddrFrom4(10, 0, byte(j%4), byte(j%200)),
				Dst:     packet.AddrFrom4(10, 0, 0, 1),
				Proto:   packet.ProtoTCP,
				SrcPort: uint16(30000 + j%512),
				DstPort: 80,
				Length:  60,
				Flags:   packet.FlagSYN,
				Seq:     uint32(j) * 1664525,
			})
		}
		e.Flush()
	}
	// One warmup window grows the packet buffer and scratch maps so the
	// measured loop reports the true steady-state 0 B/op.
	window(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		window(i + 1)
	}
}

// benchHopPath measures one full netsim hop path: NIC tx -> link
// (queue + serialization + propagation) -> switch forwarding -> link ->
// NIC rx -> handler. Both MACs are pre-learned so steady state forwards
// instead of flooding; one iteration = one frame delivered end to end.
func benchHopPath(b *testing.B) {
	net := netsim.New(sim.NewScheduler())
	sw := net.NewSwitch("sw0")
	cfg := netsim.LinkConfig{Delay: sim.Microsecond}
	na := net.NewNode("a").AddNIC()
	nb := net.NewNode("b").AddNIC()
	net.Connect(na, sw.NewPort(), cfg)
	net.Connect(nb, sw.NewPort(), cfg)
	delivered := 0
	nb.SetHandler(func([]byte) { delivered++ })
	na.SetHandler(func([]byte) {})
	sched := na.Node().Scheduler()
	ethAB := packet.Ethernet{Dst: nb.MAC(), Src: na.MAC(), Type: packet.EtherTypeIPv4}
	ab := append(ethAB.Marshal(nil), make([]byte, 100)...)
	ethBA := packet.Ethernet{Dst: na.MAC(), Src: nb.MAC(), Type: packet.EtherTypeIPv4}
	ba := ethBA.Marshal(nil)
	na.Send(ab)
	nb.Send(ba)
	sched.Drain()
	delivered = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		na.Send(ab)
		sched.Drain()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d frames, want %d", delivered, b.N)
	}
}

type constModel struct{}

func (constModel) Predict([]float64) int { return 1 }
func (constModel) Name() string          { return "allpos" }

func benchResilienceSweep(b *testing.B) {
	sc := experiments.Quick()
	sc.Devices = 4
	sc.InfectionLead = 20 * time.Second
	sc.DetectDuration = 20 * time.Second
	models := []experiments.TrainedModel{{Model: constModel{}}}
	cfg := experiments.ResilienceConfig{Intensities: []float64{0, 0.25, 0.5, 1}}
	for i := 0; i < b.N; i++ {
		if _, err := sc.RunResilience(models, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// pdesDoc is the BENCH_pdes.json document: the experiment report plus
// enough host context to judge whether the speedup numbers are bounded
// by the machine rather than the engine.
type pdesDoc struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Note       string `json:"note,omitempty"`
	*experiments.PDESReport
}

// parseCounts parses a comma-separated list of positive integers.
func parseCounts(csv, flagName string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad %s value %q", flagName, f)
		}
		out = append(out, n)
	}
	return out, nil
}

// buildBaselineNote pins the fixed reference the parallel-construction
// acceptance compares against: the single-core-switch topology build at
// 100k devices measured at commit 7abbf0c (eager per-link label
// rendering, per-direction heap allocation, no staged construction),
// before core-fabric sharding and staged parallel construction landed.
const buildBaselineNote = "pre-sharding build reference: 100k-device build+start measured 1354 ms" +
	" at commit 7abbf0c on this runner class; compare the 100000-device points'" +
	" build_ms and serial_build_ms against it"

func runPDES(out, workersCSV, scaleCSV, shardsCSV string, devices int, dur, scaleDur time.Duration) error {
	workers, err := parseCounts(workersCSV, "-pdes-workers")
	if err != nil {
		return err
	}
	sc := experiments.DefaultPDES()
	if devices > 0 {
		sc.Devices = devices
	}
	if dur > 0 {
		sc.Duration = dur
	}
	rep, err := sc.RunPDESBench(workers)
	if err != nil {
		return err
	}
	if scaleCSV != "" {
		counts, err := parseCounts(scaleCSV, "-pdes-scale")
		if err != nil {
			return err
		}
		shards, err := parseCounts(shardsCSV, "-pdes-core-shards")
		if err != nil {
			return err
		}
		rep.Scale, err = experiments.RunScaleBench(experiments.ScaleConfig{
			Seed:       sc.Seed,
			Counts:     counts,
			Duration:   scaleDur,
			CoreShards: shards,
		})
		if err != nil {
			return err
		}
	}
	doc := pdesDoc{GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(), PDESReport: rep}
	if doc.GoMaxProcs < 4 {
		doc.Note = fmt.Sprintf("measured with GOMAXPROCS=%d: speedup is bounded by available "+
			"parallelism, not the engine; regenerate on a >=4-core runner for headline figures "+
			"(byte-identity of results is verified regardless)", doc.GoMaxProcs)
	}
	if len(rep.Scale) > 0 {
		if doc.Note != "" {
			doc.Note += "; "
		}
		doc.Note += buildBaselineNote
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("serial              %10.1f ms  (%d events)\n",
		rep.Serial.WallMS, rep.Serial.Events)
	for _, pt := range rep.Parallel {
		fmt.Printf("domains=%d workers=%d %10.1f ms  %.2fx\n",
			pt.Domains, pt.Workers, pt.WallMS, pt.Speedup)
	}
	fmt.Printf("faulted serial      %10.1f ms  (%d events)\n",
		rep.FaultedSerial.WallMS, rep.FaultedSerial.Events)
	fmt.Printf("faulted domains=%d workers=%d %10.1f ms  %.2fx\n",
		rep.FaultedParallel.Domains, rep.FaultedParallel.Workers,
		rep.FaultedParallel.WallMS, rep.FaultedParallel.Speedup)
	for _, pt := range rep.Scale {
		fmt.Printf("scale devices=%-7d shards=%d domains=%d %10.1f ms  %8.0f B/device  %12.0f devices/wall-s  build %7.1f ms (serial %7.1f ms) %10.0f devices/build-s\n",
			pt.Devices, pt.CoreShards, pt.Domains, pt.WallMS, pt.HeapBytesPerDevice,
			pt.DevicesPerWallSecond, pt.BuildMS, pt.SerialBuildMS, pt.BuildDevicesPerSecond)
	}
	// Bottleneck reports go to stderr so stdout stays a clean numbers
	// stream for scripting.
	if rep.Profile != nil {
		fmt.Fprintf(os.Stderr, "\nbottleneck report (%d devices, domains=%d):\n%s",
			rep.Devices, sc.Domains, prof.BuildReport(rep.Profile).String())
	}
	for _, pt := range rep.Scale {
		if pt.Profile == nil {
			continue
		}
		fmt.Fprintf(os.Stderr, "\nbottleneck report (scale %d devices, shards=%d, domains=%d):\n%s",
			pt.Devices, pt.CoreShards, pt.Domains, prof.BuildReport(pt.Profile).String())
	}
	fmt.Println("wrote", out)
	return nil
}

// mitigationDoc is the BENCH_mitigation.json document.
type mitigationDoc struct {
	GoMaxProcs int                           `json:"gomaxprocs"`
	GoVersion  string                        `json:"go_version"`
	Points     []experiments.MitigationPoint `json:"points"`
}

// runMitigation runs the closed-loop defense sweep; every grid point is
// cross-checked for byte-identical output across PDES domain counts before
// its numbers are published.
func runMitigation(out string, devices int, quick bool) error {
	cfg := experiments.MitigationSweepConfig{Seed: 42, Devices: devices}
	if quick {
		cfg.Thresholds = []int{4}
		cfg.CacheSizes = []int{256}
		cfg.ReactionDelays = []time.Duration{0}
		cfg.DomainSet = []int{1, 2}
	}
	points, err := experiments.RunMitigationSweep(cfg)
	if err != nil {
		return err
	}
	doc := mitigationDoc{GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(), Points: points}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Print(experiments.FormatMitigationSweep(points))
	fmt.Println("wrote", out)
	return nil
}

func main() {
	out := flag.String("out", "BENCH_scheduler.json", "output path for the JSON report")
	sweep := flag.Bool("sweep", false, "also run the (slow) parallel resilience sweep benchmark")
	pdes := flag.Bool("pdes", false, "run the serial-vs-parallel engine benchmark instead of the microbenchmarks")
	pdesOut := flag.String("pdes-out", "BENCH_pdes.json", "output path for the -pdes JSON report")
	pdesWorkers := flag.String("pdes-workers", "1,2,4,8", "comma-separated worker counts for -pdes")
	pdesDevices := flag.Int("pdes-devices", 0, "override the -pdes fleet size (0 = scenario default)")
	pdesDur := flag.Duration("pdes-duration", 0, "override the -pdes simulated duration (0 = scenario default)")
	pdesScale := flag.String("pdes-scale", "", "comma-separated device counts for the fleet-size sweep (empty = skip)")
	pdesScaleDur := flag.Duration("pdes-scale-duration", 0, "simulated duration per scale-sweep run (0 = sweep default)")
	pdesShards := flag.String("pdes-core-shards", "1", "comma-separated core-fabric shard counts for the fleet-size sweep (each is crossed with every -pdes-scale count)")
	mitigation := flag.Bool("mitigation", false, "run the closed-loop mitigation sweep instead of the microbenchmarks")
	mitigationOut := flag.String("mitigation-out", "BENCH_mitigation.json", "output path for the -mitigation JSON report")
	mitigationDevices := flag.Int("mitigation-devices", 0, "override the -mitigation fleet size (0 = sweep default)")
	mitigationQuick := flag.Bool("mitigation-quick", false, "shrink -mitigation to a single grid point (CI smoke)")
	flag.Parse()

	if *mitigation {
		if err := runMitigation(*mitigationOut, *mitigationDevices, *mitigationQuick); err != nil {
			fmt.Fprintln(os.Stderr, "benchperf:", err)
			os.Exit(1)
		}
		return
	}

	if *pdes {
		if err := runPDES(*pdesOut, *pdesWorkers, *pdesScale, *pdesShards, *pdesDevices, *pdesDur, *pdesScaleDur); err != nil {
			fmt.Fprintln(os.Stderr, "benchperf:", err)
			os.Exit(1)
		}
		return
	}

	rep := Report{GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}
	rep.Benchmarks = append(rep.Benchmarks,
		measure("Scheduler", benchScheduler),
		measure("SchedulerCancel", benchSchedulerCancel),
		measure("PacketRoundtrip", benchPacketRoundtrip),
		measure("HopPath", benchHopPath),
		measure("ExtractorWindow", benchExtractorWindow),
	)
	if *sweep {
		rep.Benchmarks = append(rep.Benchmarks, measure("ResilienceSweep", benchResilienceSweep))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchperf:", err)
		os.Exit(1)
	}
	for _, r := range rep.Benchmarks {
		fmt.Printf("%-18s %12.1f ns/op %8d B/op %6d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Println("wrote", *out)
}
