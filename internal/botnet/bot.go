package botnet

import (
	"time"

	"ddoshield/internal/apps/workload"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// keepaliveInterval paces the bot's C2 PING keepalives.
const keepaliveInterval = 30 * time.Second

// reconnectDelay paces re-dials after losing the C2.
const reconnectDelay = 5 * time.Second

// Bot is the implant that runs on an infected device: it holds a C2
// session, answers keepalives, and executes flood commands.
type Bot struct {
	id     string
	host   *netstack.Host
	c2Addr packet.Addr
	c2Port uint16
	spoof  packet.Prefix
	rng    *sim.RNG

	conn      *netstack.Conn
	keepalive *sim.Ticker
	engine    Engine
	stopped   bool

	attacksRun uint64
	pktsSent   uint64
}

// NewBot returns an unstarted bot. spoof supplies the source-address range
// its SYN/ACK floods forge.
func NewBot(id string, c2Addr packet.Addr, c2Port uint16, spoof packet.Prefix, seed int64) *Bot {
	if c2Port == 0 {
		c2Port = DefaultC2Port
	}
	return &Bot{
		id:     id,
		c2Addr: c2Addr,
		c2Port: c2Port,
		spoof:  spoof,
		rng:    sim.Substream(seed, "bot/"+id),
	}
}

// ID reports the bot identifier used at registration.
func (b *Bot) ID() string { return b.id }

// Attach starts the bot on a host: it dials the C2 and awaits commands.
func (b *Bot) Attach(h *netstack.Host) {
	b.host = h
	b.stopped = false
	b.dialC2()
}

// Detach kills the implant: the C2 session closes and any running flood
// stops (a rebooted device loses Mirai, which lives only in memory).
func (b *Bot) Detach() {
	b.stopped = true
	if b.engine != nil {
		b.pktsSent += b.engine.Sent()
		b.engine.Stop()
		b.engine = nil
	}
	if b.keepalive != nil {
		b.keepalive.Stop()
		b.keepalive = nil
	}
	if b.conn != nil {
		b.conn.Abort()
		b.conn = nil
	}
}

// Stats reports attacks executed and flood packets sent.
func (b *Bot) Stats() (attacksRun, pktsSent uint64) {
	sent := b.pktsSent
	if b.engine != nil {
		sent += b.engine.Sent()
	}
	return b.attacksRun, sent
}

// Attacking reports whether an attack is currently running.
func (b *Bot) Attacking() bool { return b.engine != nil && b.engine.Running() }

func (b *Bot) dialC2() {
	if b.stopped {
		return
	}
	conn := b.host.DialTCP(b.c2Addr, b.c2Port)
	b.conn = conn
	conn.OnConnect = func() {
		conn.Send([]byte("REG " + b.id + "\r\n"))
		if b.keepalive != nil {
			b.keepalive.Stop()
		}
		b.keepalive = b.host.Scheduler().Every(keepaliveInterval, func() {
			conn.Send([]byte("PING\r\n"))
		})
	}
	workload.AttachLines(conn, func(line string) {
		cmd, err := ParseCommand(line)
		if err != nil {
			return // OK / PONG / noise
		}
		b.execute(cmd)
	})
	conn.OnRemoteClose = func() { conn.Close() }
	conn.OnClose = func(err error) {
		if b.keepalive != nil {
			b.keepalive.Stop()
			b.keepalive = nil
		}
		if b.conn == conn {
			b.conn = nil
		}
		if !b.stopped {
			b.host.Scheduler().After(reconnectDelay, b.dialC2)
		}
	}
}

func (b *Bot) execute(cmd Command) {
	if b.engine != nil {
		b.pktsSent += b.engine.Sent()
		b.engine.Stop() // new order supersedes the old one
	}
	b.attacksRun++
	var eng Engine
	if cmd.Type == AttackHTTP {
		eng = NewHTTPFlood(b.host, b.rng, cmd)
	} else {
		eng = NewFlood(b.host, b.rng, cmd, b.spoof)
	}
	eng.SetOnDone(func() {
		if b.engine == eng {
			b.pktsSent += eng.Sent()
			b.engine = nil
		}
		if b.conn != nil {
			b.conn.Send([]byte("DONE\r\n"))
		}
	})
	b.engine = eng
	eng.Start()
}
