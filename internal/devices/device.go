package devices

import (
	"time"

	"ddoshield/internal/apps/ftpapp"
	"ddoshield/internal/apps/httpapp"
	"ddoshield/internal/apps/rtmpapp"
	"ddoshield/internal/botnet"
	"ddoshield/internal/container"
	"ddoshield/internal/netstack"
	"ddoshield/internal/packet"
)

// Profile describes a class of IoT device: its factory telnet credential
// (drawn from the Mirai dictionary for vulnerable classes, empty for
// hardened ones) and the benign workloads it runs against the TServer.
type Profile struct {
	// Kind is a human-readable class name ("ip-camera", ...).
	Kind string
	// Cred is the factory telnet credential; a zero value hardens the
	// device against dictionary attack.
	Cred botnet.Credential
	// HTTP, Video, FTP enable the corresponding client workloads.
	HTTP  bool
	Video bool
	FTP   bool
	// ThinkScale stretches (>1) or compresses (<1) client think times,
	// differentiating chatty devices from quiet ones. Zero means 1.
	ThinkScale float64
}

// Built-in profiles modeled on the device classes Mirai notoriously
// conscripted (cameras, DVRs) plus benign-only classes.
var (
	// ProfileIPCamera is a vulnerable camera that watches video streams
	// and fetches firmware/config over HTTP.
	ProfileIPCamera = Profile{
		Kind: "ip-camera", Cred: botnet.Credential{User: "root", Pass: "xc3511"},
		HTTP: true, Video: true,
	}
	// ProfileDVR is a vulnerable DVR doing video and FTP.
	ProfileDVR = Profile{
		Kind: "dvr", Cred: botnet.Credential{User: "root", Pass: "vizxv"},
		Video: true, FTP: true,
	}
	// ProfileRouter is a vulnerable home router with light HTTP chatter.
	ProfileRouter = Profile{
		Kind: "router", Cred: botnet.Credential{User: "admin", Pass: "admin"},
		HTTP: true, ThinkScale: 2,
	}
	// ProfileSensor is a hardened sensor posting small HTTP readings.
	ProfileSensor = Profile{
		Kind: "sensor", HTTP: true, ThinkScale: 0.5,
	}
	// ProfileSmartTV is a hardened TV streaming video.
	ProfileSmartTV = Profile{
		Kind: "smart-tv", Video: true,
	}
	// ProfileIdle is a hardened device with no client workloads at all: it
	// answers telnet probes (always refusing) and otherwise sits silent.
	// Large-scale fleets are mostly idle, which is what makes 100k-device
	// topologies cheap — an idle flyweight device is just a template
	// pointer, a seed, and a lazily-populated host.
	ProfileIdle = Profile{Kind: "idle"}
)

// DefaultFleet cycles the built-in profiles: 3 of 5 classes vulnerable.
var DefaultFleet = []Profile{
	ProfileIPCamera, ProfileDVR, ProfileRouter, ProfileSensor, ProfileSmartTV,
}

// ScaleFleet is the profile mix for large-scale fleet benchmarks: a small
// active head (one chatty camera, one fast sensor) on a mostly-idle body,
// cycled per 16 devices. Real IoT deployments are dominated by devices
// that sit silent between rare reports, so this is the mix the
// devices-per-wall-second headline is measured against.
var ScaleFleet = []Profile{
	ProfileIPCamera, ProfileSensor,
	ProfileIdle, ProfileIdle, ProfileIdle, ProfileIdle, ProfileIdle,
	ProfileIdle, ProfileIdle, ProfileIdle, ProfileIdle, ProfileIdle,
	ProfileIdle, ProfileIdle, ProfileIdle, ProfileIdle,
}

// Event-rate model for load-aware placement. Units are arbitrary — only
// ratios between device classes matter to the partitioner.
const (
	// idleEventWeight is the baseline every device carries: a telnet
	// listener that answers scanner probes.
	idleEventWeight = 1.0
	// eventsPerRequest approximates the simulator events one benign
	// request/response exchange costs (TCP handshake, data, teardown,
	// timers) — the multiplier on each client's request rate.
	eventsPerRequest = 12.0
	// botEventWeight dominates everything else: an infected device floods
	// at hundreds of packets per second while benign chatter is measured
	// in requests per tens of seconds.
	botEventWeight = 400.0
)

// EventWeight estimates this class's steady-state event rate in arbitrary
// units, for load-aware domain placement: potential bots dominate, benign
// chatters contribute inversely to their think times, idle devices
// contribute only the listener baseline. infectable says whether the
// device can actually be conscripted (vulnerable credential AND reachable
// by the attacker's scan range).
func (p Profile) EventWeight(meanThink time.Duration, infectable bool) float64 {
	if meanThink <= 0 {
		meanThink = 5 * time.Second
	}
	think := meanThink
	if p.ThinkScale > 0 {
		think = time.Duration(float64(think) * p.ThinkScale)
	}
	perReq := eventsPerRequest / think.Seconds()
	w := idleEventWeight
	if p.HTTP {
		w += perReq
	}
	if p.Video {
		w += perReq / 2
	}
	if p.FTP {
		w += perReq / 3
	}
	if infectable && p.Cred.User != "" {
		w += botEventWeight
	}
	return w
}

// Config wires a Device to its environment.
type Config struct {
	// Name identifies the device (bot ID, container name).
	Name string
	// Profile selects class behaviour.
	Profile Profile
	// TServer is the benign target server's address.
	TServer packet.Addr
	// SpoofRange is handed to the bot for flood source forging.
	SpoofRange packet.Prefix
	// Seed drives the device's workloads.
	Seed int64
	// MeanThink is the base think time between benign requests
	// (default 5 s, scaled by the profile's ThinkScale).
	MeanThink time.Duration
}

// Device is one Dev: telnet service + benign clients + (after infection) a
// bot. It implements container.App. The struct is a flyweight — class
// behaviour lives in the shared Template, the device itself carries only
// its identity (name, seed) and runtime state, and the app/service objects
// exist only while the device is running.
type Device struct {
	tmpl *Template
	name string
	seed int64

	telnet *TelnetService
	http   *httpapp.Client
	video  *rtmpapp.Client
	ftp    *ftpapp.Client
	bot    *botnet.Bot
	host   *netstack.Host

	infections uint64
	running    bool
}

var _ container.App = (*Device)(nil)

// New returns an unstarted device with a private single-use template.
// Fleets should build one Template per device class and Instantiate from
// it instead, so class state is shared across all instances.
func New(cfg Config) *Device {
	tmpl := NewTemplate(TemplateConfig{
		Profile:    cfg.Profile,
		TServer:    cfg.TServer,
		SpoofRange: cfg.SpoofRange,
		MeanThink:  cfg.MeanThink,
	})
	return tmpl.Instantiate(cfg.Name, cfg.Seed)
}

// Start implements container.App: it brings up the telnet service and the
// profile's benign clients. A restarted device is clean (no bot).
func (d *Device) Start(c *container.Container) {
	d.StartOn(c.Host())
}

// StartOn brings the device up on an arbitrary host (tests use this
// without a container runtime).
func (d *Device) StartOn(h *netstack.Host) {
	if d.running {
		return
	}
	d.running = true
	d.host = h
	t := d.tmpl
	if d.telnet == nil {
		d.telnet = new(TelnetService)
	}
	d.telnet.rearm(t.profile.Cred.User, t.profile.Cred.Pass, d.install)
	// Port 23 is bound fresh each start; errors only occur on double start.
	_ = d.telnet.Attach(h)
	if t.profile.HTTP {
		d.http = httpapp.NewClient(t.tserver, 0, t.think, d.seed+1)
		d.http.Attach(h)
	}
	if t.profile.Video {
		d.video = rtmpapp.NewClient(t.tserver, 0, 2*t.think, d.seed+2)
		d.video.Attach(h)
	}
	if t.profile.FTP {
		d.ftp = ftpapp.NewClient(t.tserver, 0, "anonymous", "iot@dev", 3*t.think, d.seed+3)
		d.ftp.Attach(h)
	}
}

// Stop implements container.App: everything is torn down, including any
// implant — Mirai does not survive a reboot. The telnet service object is
// retained for this device's next start.
func (d *Device) Stop() {
	if !d.running {
		return
	}
	d.running = false
	if d.bot != nil {
		d.bot.Detach()
		d.bot = nil
	}
	if d.telnet != nil {
		// Detach only — the service object stays with this device for its
		// next start (see rearm for why it must never change owners).
		d.telnet.Detach()
	}
	if d.http != nil {
		d.http.Detach()
		d.http = nil
	}
	if d.video != nil {
		d.video.Detach()
		d.video = nil
	}
	if d.ftp != nil {
		d.ftp.Detach()
		d.ftp = nil
	}
}

// install plants (or restarts) the bot; invoked by the telnet INSTALL
// command the loader issues.
func (d *Device) install(c2 packet.Addr, port uint16) {
	if !d.running {
		return
	}
	if d.bot != nil {
		d.bot.Detach()
	}
	d.infections++
	d.bot = botnet.NewBot(d.name, c2, port, d.tmpl.spoof, d.seed+9)
	d.bot.Attach(d.host)
}

// Infected reports whether a bot is currently planted.
func (d *Device) Infected() bool { return d.bot != nil }

// Bot exposes the implant for inspection (nil when clean).
func (d *Device) Bot() *botnet.Bot { return d.bot }

// Infections reports how many times the device has been (re)infected.
func (d *Device) Infections() uint64 { return d.infections }

// Telnet exposes the telnet service (nil before the first start; retained,
// detached, while stopped).
func (d *Device) Telnet() *TelnetService { return d.telnet }

// Profile reports the device's profile.
func (d *Device) Profile() Profile { return d.tmpl.profile }

// Template reports the shared class template backing this device.
func (d *Device) Template() *Template { return d.tmpl }

// Vulnerable reports whether the profile carries a factory credential.
func (d *Device) Vulnerable() bool { return d.tmpl.profile.Cred.User != "" }

// BenignStats aggregates the benign clients' request/transfer counters.
func (d *Device) BenignStats() (started, completed uint64) {
	if d.http != nil {
		f, c, _, _ := d.http.Stats()
		started += f
		completed += c
	}
	if d.video != nil {
		p, fin, _ := d.video.Stats()
		started += p
		completed += fin
	}
	if d.ftp != nil {
		s, c, _, _ := d.ftp.Stats()
		started += s
		completed += c
	}
	return started, completed
}
