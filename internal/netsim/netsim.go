// Package netsim is the packet-level network simulator that replaces NS-3 in
// this reproduction of DDoShield-IoT. It models nodes with NICs, full-duplex
// links with finite bandwidth, propagation delay and drop-tail queues, and a
// learning Ethernet switch (the CSMA-segment analog the paper's topology
// uses to join the Devs, the Attacker, the TServer and the IDS).
//
// All state advances on a single sim.Scheduler; the simulation is therefore
// deterministic for a fixed seed and topology.
package netsim

import (
	"fmt"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// Port is anything that can terminate a link: a host NIC or a switch port.
type Port interface {
	// receive is invoked by the link when a frame finishes arriving.
	receive(raw []byte)
	// String identifies the port for diagnostics.
	String() string
}

// Tap observes frames on a link. Taps run at frame-delivery time with the
// simulated timestamp, exactly like a passive capture interface. The pcap
// writer and the IDS monitor are both taps.
type Tap func(t sim.Time, raw []byte)

// Network owns the simulated topology: the scheduler, every node, link and
// switch, and the MAC address allocator.
type Network struct {
	sched   *sim.Scheduler
	nodes   []*Node
	links   []*Link
	macSeq  uint64
	nameSet map[string]bool
}

// New creates an empty network driven by sched.
func New(sched *sim.Scheduler) *Network {
	return &Network{sched: sched, nameSet: make(map[string]bool)}
}

// Scheduler exposes the simulation scheduler driving this network.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Now reports the current simulated time.
func (n *Network) Now() sim.Time { return n.sched.Now() }

// NewNode adds a named host node. Names must be unique.
func (n *Network) NewNode(name string) *Node {
	if n.nameSet[name] {
		name = fmt.Sprintf("%s-%d", name, len(n.nodes))
	}
	n.nameSet[name] = true
	node := &Node{net: n, name: name}
	n.nodes = append(n.nodes, node)
	return node
}

// Nodes returns the hosts in creation order.
func (n *Network) Nodes() []*Node {
	out := make([]*Node, len(n.nodes))
	copy(out, n.nodes)
	return out
}

func (n *Network) nextMAC() packet.MAC {
	n.macSeq++
	return packet.MACFromUint64(n.macSeq)
}

// Node is a simulated host: a container-backed device, the attacker, the
// target server or the IDS. A node owns one or more NICs.
type Node struct {
	net  *Network
	name string
	nics []*NIC
}

// Name returns the node's unique name.
func (nd *Node) Name() string { return nd.name }

// Network returns the owning network.
func (nd *Node) Network() *Network { return nd.net }

// AddNIC attaches a new NIC to the node.
func (nd *Node) AddNIC() *NIC {
	nic := &NIC{node: nd, mac: nd.net.nextMAC(), index: len(nd.nics)}
	nd.nics = append(nd.nics, nic)
	return nic
}

// NIC returns the i-th NIC, or nil when absent.
func (nd *Node) NIC(i int) *NIC {
	if i < 0 || i >= len(nd.nics) {
		return nil
	}
	return nd.nics[i]
}

// NICs returns all NICs in attachment order.
func (nd *Node) NICs() []*NIC {
	out := make([]*NIC, len(nd.nics))
	copy(out, nd.nics)
	return out
}

// NIC is a network interface with a MAC address, bound to one end of a link.
type NIC struct {
	node    *Node
	mac     packet.MAC
	index   int
	link    *Link
	side    int // 0 or 1: which end of the link this NIC terminates
	handler func(raw []byte)
	// ingress, when set, vets every arriving frame before the handler;
	// returning false drops it (the firewall hook).
	ingress func(raw []byte) bool

	rxFrames       uint64
	rxBytes        uint64
	txFrames       uint64
	txBytes        uint64
	ingressDropped uint64
}

var _ Port = (*NIC)(nil)

// MAC reports the NIC's hardware address.
func (c *NIC) MAC() packet.MAC { return c.mac }

// Node reports the owning node.
func (c *NIC) Node() *Node { return c.node }

// Attached reports whether the NIC is wired to a link.
func (c *NIC) Attached() bool { return c.link != nil }

// SetHandler installs the receive callback (the host network stack).
func (c *NIC) SetHandler(fn func(raw []byte)) { c.handler = fn }

// Send transmits a raw frame out of the NIC. Frames sent on an unattached
// NIC are silently dropped, like a cable that was unplugged (device churn).
func (c *NIC) Send(raw []byte) {
	if c.link == nil {
		return
	}
	c.txFrames++
	c.txBytes += uint64(len(raw))
	c.link.send(c.side, raw)
}

// Stats reports cumulative frame/byte counters (rx then tx).
func (c *NIC) Stats() (rxFrames, rxBytes, txFrames, txBytes uint64) {
	return c.rxFrames, c.rxBytes, c.txFrames, c.txBytes
}

func (c *NIC) receive(raw []byte) {
	if c.ingress != nil && !c.ingress(raw) {
		c.ingressDropped++
		return
	}
	c.rxFrames++
	c.rxBytes += uint64(len(raw))
	if c.handler != nil {
		c.handler(raw)
	}
}

// SetIngressFilter installs (or clears, with nil) a frame filter that runs
// before the receive handler; returning false drops the frame. A firewall
// in front of the host attaches here.
func (c *NIC) SetIngressFilter(fn func(raw []byte) bool) { c.ingress = fn }

// IngressDropped reports frames discarded by the ingress filter.
func (c *NIC) IngressDropped() uint64 { return c.ingressDropped }

// String identifies the NIC as "node/ethN".
func (c *NIC) String() string { return fmt.Sprintf("%s/eth%d", c.node.name, c.index) }

// LinkConfig sets the physical properties of a duplex link.
type LinkConfig struct {
	// RateBps is the line rate in bits per second (default 100 Mb/s).
	RateBps int64
	// Delay is the one-way propagation delay (default 1 ms).
	Delay sim.Time
	// QueueBytes caps each direction's drop-tail queue (default 128 KiB).
	QueueBytes int
	// LossProb drops each frame independently with this probability,
	// using rng. Zero disables random loss.
	LossProb float64
	// RNG drives random loss; required when LossProb > 0.
	RNG *sim.RNG
}

func (cfg LinkConfig) withDefaults() LinkConfig {
	if cfg.RateBps <= 0 {
		cfg.RateBps = 100_000_000
	}
	if cfg.Delay <= 0 {
		cfg.Delay = sim.Millisecond
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = 128 << 10
	}
	return cfg
}

// Link is a full-duplex point-to-point link between two ports. Each
// direction has an independent transmitter with a drop-tail byte queue.
type Link struct {
	net  *Network
	cfg  LinkConfig
	ends [2]Port
	dirs [2]*direction // dirs[i] carries frames from ends[i] to ends[1-i]
	taps []Tap
	up   bool
}

type direction struct {
	link       *Link
	from       int
	queue      [][]byte
	queued     int // bytes waiting (excluding the frame in transmission)
	busy       bool
	txFrames   uint64
	txBytes    uint64
	dropFrames uint64
	lossFrames uint64
}

// Connect wires two ports with a duplex link.
func (n *Network) Connect(a, b Port, cfg LinkConfig) *Link {
	l := &Link{net: n, cfg: cfg.withDefaults(), ends: [2]Port{a, b}, up: true}
	l.dirs[0] = &direction{link: l, from: 0}
	l.dirs[1] = &direction{link: l, from: 1}
	bindPort(a, l, 0)
	bindPort(b, l, 1)
	n.links = append(n.links, l)
	return l
}

func bindPort(p Port, l *Link, side int) {
	switch v := p.(type) {
	case *NIC:
		v.link = l
		v.side = side
	case *switchPort:
		v.link = l
		v.side = side
	}
}

// AddTap registers a passive observer invoked for every frame the link
// delivers (in either direction).
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// SetUp raises or cuts the link. Frames sent while the link is down are
// dropped; frames already in flight still arrive. Used by the churn model.
func (l *Link) SetUp(up bool) { l.up = up }

// Up reports whether the link is currently passing traffic.
func (l *Link) Up() bool { return l.up }

// Stats aggregates both directions' counters.
func (l *Link) Stats() (txFrames, txBytes, drops uint64) {
	for _, d := range l.dirs {
		txFrames += d.txFrames
		txBytes += d.txBytes
		drops += d.dropFrames + d.lossFrames
	}
	return
}

// serializationTime is how long a frame of n bytes occupies the transmitter.
func (l *Link) serializationTime(n int) sim.Time {
	return sim.Time(int64(n) * 8 * int64(sim.Second) / l.cfg.RateBps)
}

func (l *Link) send(from int, raw []byte) {
	if !l.up {
		l.dirs[from].dropFrames++
		return
	}
	d := l.dirs[from]
	if d.busy {
		if d.queued+len(raw) > l.cfg.QueueBytes {
			d.dropFrames++ // drop-tail: queue full
			return
		}
		d.queue = append(d.queue, raw)
		d.queued += len(raw)
		return
	}
	d.transmit(raw)
}

func (d *direction) transmit(raw []byte) {
	l := d.link
	d.busy = true
	ser := l.serializationTime(len(raw))
	sched := l.net.sched
	// Transmitter frees after serialization; frame lands after propagation.
	sched.At(sched.Now()+ser, func() {
		d.txFrames++
		d.txBytes += uint64(len(raw))
		if len(d.queue) > 0 {
			next := d.queue[0]
			d.queue = d.queue[1:]
			d.queued -= len(next)
			d.transmit(next)
		} else {
			d.busy = false
		}
	})
	if l.cfg.LossProb > 0 && l.cfg.RNG != nil && l.cfg.RNG.Bool(l.cfg.LossProb) {
		d.lossFrames++
		return
	}
	arrive := sched.Now() + ser + l.cfg.Delay
	to := l.ends[1-d.from]
	sched.At(arrive, func() {
		if !l.up {
			return
		}
		for _, tap := range l.taps {
			tap(sched.Now(), raw)
		}
		to.receive(raw)
	})
}
