// Package iforest implements the Isolation Forest anomaly detector (Liu,
// Ting & Zhou), the second of the §V extension models: random isolation
// trees assign short average path lengths to outliers. For classification,
// the anomaly-score threshold is calibrated on the labeled training set so
// the flagged fraction matches the observed contamination.
package iforest

import (
	"fmt"
	"math"
	"sort"

	"ddoshield/internal/sim"
)

// Config tunes training.
type Config struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// SubsampleSize is ψ, the per-tree sample size (default 256).
	SubsampleSize int
	// Contamination overrides the anomalous fraction used to calibrate
	// the threshold; 0 derives it from the training labels.
	Contamination float64
	// Seed drives sampling and split selection.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.SubsampleSize <= 0 {
		c.SubsampleSize = 256
	}
	return c
}

// Node is one isolation-tree node (exported for gob).
type Node struct {
	// Feature is the split feature (-1 for external nodes).
	Feature int32
	// Threshold splits x[Feature] < Threshold to Left, else Right.
	Threshold   float64
	Left, Right int32
	// Size is the training-sample count at external nodes (for the
	// path-length adjustment c(Size)).
	Size int32
}

// Tree is one isolation tree.
type Tree struct {
	Nodes []Node
}

// Model is a trained isolation forest with a calibrated decision threshold.
type Model struct {
	Cfg       Config
	TreeList  []*Tree
	Threshold float64 // anomaly-score cut: score >= Threshold → malicious
	subC      float64 // c(ψ), cached normalizer
}

// Name implements ml.Classifier.
func (m *Model) Name() string { return "iforest" }

// cFactor is the average unsuccessful-search path length of a BST of n
// nodes — the normalizer from the Isolation Forest paper.
func cFactor(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649
	return 2*h - 2*float64(n-1)/float64(n)
}

// pathLength traverses one tree.
func (t *Tree) pathLength(x []float64) float64 {
	var depth float64
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return depth + cFactor(int(n.Size))
		}
		depth++
		if x[n.Feature] < n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Score returns the anomaly score in (0,1): ~1 for clear outliers, ~0.5
// for unremarkable points. It is safe for concurrent use: the normalizer
// fallback (needed after gob decode, which drops the unexported cache) is
// computed locally rather than written back to the model.
func (m *Model) Score(x []float64) float64 {
	if len(m.TreeList) == 0 {
		return 0
	}
	var sum float64
	for _, t := range m.TreeList {
		sum += t.pathLength(x)
	}
	mean := sum / float64(len(m.TreeList))
	c := m.subC
	if c == 0 {
		c = cFactor(m.Cfg.SubsampleSize)
	}
	return math.Pow(2, -mean/c)
}

// Predict returns 1 (malicious) when the anomaly score crosses the
// calibrated threshold.
func (m *Model) Predict(x []float64) int {
	if m.Score(x) >= m.Threshold {
		return 1
	}
	return 0
}

// MemoryBytes reports the live model footprint.
func (m *Model) MemoryBytes() int64 {
	n := 0
	for _, t := range m.TreeList {
		n += len(t.Nodes)
	}
	return int64(n)*32 + int64(len(m.TreeList))*48
}

// Train fits the forest on rows xs; labels ys calibrate the threshold
// (the isolation structure itself is unsupervised).
func Train(cfg Config, xs [][]float64, ys []int) (*Model, error) {
	cfg = cfg.withDefaults()
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("iforest: empty training set")
	}
	if len(ys) != n {
		return nil, fmt.Errorf("iforest: %d rows vs %d labels", n, len(ys))
	}
	rng := sim.Substream(cfg.Seed, "iforest")
	psi := cfg.SubsampleSize
	if psi > n {
		psi = n
	}
	maxDepth := int(math.Ceil(math.Log2(float64(psi)))) + 1

	m := &Model{Cfg: cfg}
	for t := 0; t < cfg.Trees; t++ {
		idx := rng.Perm(n)[:psi]
		b := &itBuilder{xs: xs, rng: rng, maxDepth: maxDepth}
		b.build(idx, 0)
		m.TreeList = append(m.TreeList, &Tree{Nodes: b.nodes})
	}
	m.subC = cFactor(psi)

	// Calibrate the threshold: flag the top contamination-fraction scores.
	contamination := cfg.Contamination
	if contamination <= 0 {
		mal := 0
		for _, y := range ys {
			if y == 1 {
				mal++
			}
		}
		contamination = float64(mal) / float64(n)
	}
	if contamination <= 0 {
		contamination = 0.01
	}
	sampleN := n
	if sampleN > 5000 {
		sampleN = 5000
	}
	scores := make([]float64, 0, sampleN)
	for _, i := range rng.Perm(n)[:sampleN] {
		scores = append(scores, m.Score(xs[i]))
	}
	sort.Float64s(scores)
	cut := int(float64(len(scores)) * (1 - contamination))
	if cut >= len(scores) {
		cut = len(scores) - 1
	}
	if cut < 0 {
		cut = 0
	}
	m.Threshold = scores[cut]
	return m, nil
}

type itBuilder struct {
	xs       [][]float64
	rng      *sim.RNG
	maxDepth int
	nodes    []Node
}

func (b *itBuilder) build(idx []int, depth int) int32 {
	if len(idx) <= 1 || depth >= b.maxDepth {
		b.nodes = append(b.nodes, Node{Feature: -1, Size: int32(len(idx))})
		return int32(len(b.nodes) - 1)
	}
	d := len(b.xs[0])
	// Pick a random feature with spread; give up after a few tries.
	var feat int
	var lo, hi float64
	found := false
	for try := 0; try < 8; try++ {
		feat = b.rng.Intn(d)
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			v := b.xs[i][feat]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > lo {
			found = true
			break
		}
	}
	if !found {
		b.nodes = append(b.nodes, Node{Feature: -1, Size: int32(len(idx))})
		return int32(len(b.nodes) - 1)
	}
	thr := b.rng.Uniform(lo, hi)
	var li, ri []int
	for _, i := range idx {
		if b.xs[i][feat] < thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		b.nodes = append(b.nodes, Node{Feature: -1, Size: int32(len(idx))})
		return int32(len(b.nodes) - 1)
	}
	self := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{Feature: int32(feat), Threshold: thr})
	l := b.build(li, depth+1)
	r := b.build(ri, depth+1)
	b.nodes[self].Left = l
	b.nodes[self].Right = r
	return self
}
