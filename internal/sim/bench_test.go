package sim

import (
	"testing"
	"time"
)

// noopHandler is package-level so scheduling it allocates no closure.
var noopHandler Handler = func() {}

// BenchmarkScheduler measures the steady-state schedule+fire cycle: one
// event is scheduled and fired per iteration, recycling nodes through the
// free list. The alloc guard below pins this at zero allocations.
func BenchmarkScheduler(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, noopHandler)
		s.Step()
	}
}

// BenchmarkSchedulerDeep measures schedule+fire against a populated queue,
// so sift costs at realistic queue depths are visible.
func BenchmarkSchedulerDeep(b *testing.B) {
	s := NewScheduler()
	for i := 0; i < 1024; i++ {
		s.After(time.Duration(i+1)*time.Hour, noopHandler)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, noopHandler)
		s.Step()
	}
}

// BenchmarkSchedulerCancel measures the schedule+cancel path, which removes
// the event from the heap immediately via its tracked index.
func BenchmarkSchedulerCancel(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := s.After(time.Microsecond, noopHandler)
		ev.Cancel()
	}
}

func TestSchedulerSteadyStateAllocs(t *testing.T) {
	s := NewScheduler()
	// Warm the node pool and the queue's backing array.
	for i := 0; i < 8; i++ {
		s.After(0, noopHandler)
	}
	s.Drain()
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Microsecond, noopHandler)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocated %.1f/op, want 0", allocs)
	}
}

func TestSchedulerCancelAllocs(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 8; i++ {
		s.After(0, noopHandler)
	}
	s.Drain()
	allocs := testing.AllocsPerRun(1000, func() {
		ev := s.After(time.Microsecond, noopHandler)
		ev.Cancel()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+cancel allocated %.1f/op, want 0", allocs)
	}
}
