// Package features implements the IDS preprocessing stage of Fig. 2: it
// turns captured packets into fixed-length numeric vectors by aggregating
// per-packet "basic" features with per-time-window "statistical" features,
// exactly as §III-B and §IV-A of the paper describe. Every packet in a
// window shares the window's statistical features — the property the paper
// identifies as both an accuracy booster (it separates flood windows from
// benign windows) and a noise source at attack boundaries.
package features

import (
	"math"
	"time"

	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// Basic is the per-packet feature set: the attributes the paper lists
// (timestamp, addresses, protocol, ports) plus the header fields the
// statistical features are computed from.
type Basic struct {
	Time    sim.Time
	Src     packet.Addr
	Dst     packet.Addr
	Proto   uint8
	SrcPort uint16
	DstPort uint16
	Length  int
	Flags   uint8  // TCP flags (0 for UDP)
	Seq     uint32 // TCP sequence number (0 for UDP)
}

// FromPacket extracts basic features from a dissected frame. Non-IP and
// non-TCP/UDP frames are not feature-bearing and return ok=false.
func FromPacket(p *packet.Packet) (Basic, bool) {
	if !p.HasIPv4 || (!p.HasTCP && !p.HasUDP) {
		return Basic{}, false
	}
	b := Basic{
		Time:    p.Time,
		Src:     p.IPv4.Src,
		Dst:     p.IPv4.Dst,
		Proto:   p.IPv4.Proto,
		SrcPort: p.SrcPort(),
		DstPort: p.DstPort(),
		Length:  p.Len(),
	}
	if p.HasTCP {
		b.Flags = p.TCP.Flags
		b.Seq = p.TCP.Seq
	}
	return b, true
}

// Stats is the per-window statistical feature set of §IV-A: traffic volume,
// destination-port entropy, port-frequency and short-lived-connection
// analysis, SYN-without-ACK counting, flow rates and sequence-number
// variance.
type Stats struct {
	// PacketCount is the number of packets in the window.
	PacketCount int
	// ByteCount is the total frame bytes in the window.
	ByteCount int
	// MeanPacketLen is ByteCount/PacketCount.
	MeanPacketLen float64
	// DstPortEntropy is the Shannon entropy (bits) of destination ports.
	DstPortEntropy float64
	// SrcAddrEntropy is the Shannon entropy (bits) of source addresses;
	// spoofed-source floods drive it toward its maximum.
	SrcAddrEntropy float64
	// UniqueDstPorts counts distinct destination ports.
	UniqueDstPorts int
	// UniqueSrcs counts distinct source addresses.
	UniqueSrcs int
	// SynCount counts pure SYN packets (SYN set, ACK clear).
	SynCount int
	// SynAckCount counts SYN+ACK packets.
	SynAckCount int
	// SynNoAckRatio is SynCount/(SynAckCount+1): the scanning/flood
	// signature of SYNs that never complete handshakes.
	SynNoAckRatio float64
	// ShortLivedConns counts flows that appear in this window with fewer
	// than shortFlowPackets packets — probe- and flood-style flows.
	ShortLivedConns int
	// RepeatedConnAttempts counts (src,dst,dstPort) triples with more than
	// one pure SYN in the window.
	RepeatedConnAttempts int
	// FlowCount counts distinct 5-tuple flows in the window (flow rate).
	FlowCount int
	// SeqStd is the standard deviation of TCP sequence numbers normalized
	// to [0,1]; random per-packet sequence numbers (forged floods) push it
	// toward the uniform-distribution value ~0.29.
	SeqStd float64
	// UDPFraction is the share of UDP packets.
	UDPFraction float64
	// MeanInterarrival is the mean packet gap in seconds.
	MeanInterarrival float64
}

// shortFlowPackets is the threshold below which a flow observed in a
// window counts as short-lived.
const shortFlowPackets = 3

// statsScratch holds the histogram maps ComputeStats needs. An Extractor
// keeps one and clears it per window, so steady-state window closes reuse
// the map storage instead of reallocating four maps per second of capture.
type statsScratch struct {
	dstPorts   map[uint16]int
	srcs       map[packet.Addr]int
	flows      map[packet.FlowKey]int
	synTriples map[packet.FlowKey]int
}

func (sc *statsScratch) reset() {
	if sc.dstPorts == nil {
		sc.dstPorts = make(map[uint16]int)
		sc.srcs = make(map[packet.Addr]int)
		sc.flows = make(map[packet.FlowKey]int)
		sc.synTriples = make(map[packet.FlowKey]int)
		return
	}
	clear(sc.dstPorts)
	clear(sc.srcs)
	clear(sc.flows)
	clear(sc.synTriples)
}

// ComputeStats computes the window statistics over a packet batch.
func ComputeStats(pkts []Basic) Stats {
	var sc statsScratch
	return sc.compute(pkts)
}

// compute is ComputeStats over reusable scratch maps.
func (sc *statsScratch) compute(pkts []Basic) Stats {
	var st Stats
	st.PacketCount = len(pkts)
	if len(pkts) == 0 {
		return st
	}
	sc.reset()
	dstPorts := sc.dstPorts
	srcs := sc.srcs
	flows := sc.flows
	synTriples := sc.synTriples
	var seqMean, seqM2 float64
	var seqN int
	udp := 0
	for i := range pkts {
		p := &pkts[i]
		st.ByteCount += p.Length
		dstPorts[p.DstPort]++
		srcs[p.Src]++
		flows[packet.FlowKey{
			Src: p.Src, Dst: p.Dst, Proto: p.Proto,
			SrcPort: p.SrcPort, DstPort: p.DstPort,
		}]++
		switch p.Proto {
		case packet.ProtoUDP:
			udp++
		case packet.ProtoTCP:
			syn := p.Flags&packet.FlagSYN != 0
			ack := p.Flags&packet.FlagACK != 0
			switch {
			case syn && !ack:
				st.SynCount++
				synTriples[packet.FlowKey{Src: p.Src, Dst: p.Dst, Proto: p.Proto, DstPort: p.DstPort}]++
			case syn && ack:
				st.SynAckCount++
			}
			// Welford accumulation of normalized sequence numbers.
			seqN++
			v := float64(p.Seq) / float64(math.MaxUint32)
			d := v - seqMean
			seqMean += d / float64(seqN)
			seqM2 += d * (v - seqMean)
		}
	}
	st.MeanPacketLen = float64(st.ByteCount) / float64(len(pkts))
	st.DstPortEntropy = entropy(dstPorts, len(pkts))
	st.SrcAddrEntropy = entropy(srcs, len(pkts))
	st.UniqueDstPorts = len(dstPorts)
	st.UniqueSrcs = len(srcs)
	st.SynNoAckRatio = float64(st.SynCount) / float64(st.SynAckCount+1)
	for _, n := range flows {
		if n < shortFlowPackets {
			st.ShortLivedConns++
		}
	}
	for _, n := range synTriples {
		if n > 1 {
			st.RepeatedConnAttempts++
		}
	}
	st.FlowCount = len(flows)
	if seqN > 1 {
		st.SeqStd = math.Sqrt(seqM2 / float64(seqN))
	}
	st.UDPFraction = float64(udp) / float64(len(pkts))
	if len(pkts) > 1 {
		span := (pkts[len(pkts)-1].Time - pkts[0].Time).Seconds()
		st.MeanInterarrival = span / float64(len(pkts)-1)
	}
	return st
}

// entropy computes Shannon entropy in bits over a count histogram.
func entropy[K comparable](hist map[K]int, total int) float64 {
	if total == 0 {
		return 0
	}
	var h float64
	for _, n := range hist {
		if n == 0 {
			continue
		}
		p := float64(n) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Feature vector layout: basic features first, then the statistical block
// shared by every packet in the window.
var (
	basicNames = []string{
		"proto_tcp", "proto_udp", "src_port", "dst_port", "pkt_len",
		"flag_syn", "flag_ack", "flag_fin", "flag_rst", "flag_psh",
	}
	statNames = []string{
		"win_pkt_count", "win_byte_count", "win_mean_pkt_len",
		"win_dst_port_entropy", "win_src_addr_entropy",
		"win_unique_dst_ports", "win_unique_srcs",
		"win_syn_count", "win_synack_count", "win_syn_noack_ratio",
		"win_short_lived_conns", "win_repeated_conn_attempts",
		"win_flow_count", "win_seq_std", "win_udp_fraction",
		"win_mean_interarrival",
	}
)

// Names returns the feature names in vector order.
func Names() []string {
	out := make([]string, 0, len(basicNames)+len(statNames))
	out = append(out, basicNames...)
	return append(out, statNames...)
}

// NumFeatures is the length of every produced vector.
func NumFeatures() int { return len(basicNames) + len(statNames) }

// NumBasic is the number of per-packet features at the front of the vector.
func NumBasic() int { return len(basicNames) }

func flag(f, bit uint8) float64 {
	if f&bit != 0 {
		return 1
	}
	return 0
}

// AppendVector appends the aggregated feature vector (basic ∥ stats) for
// one packet to dst and returns the extended slice.
func AppendVector(dst []float64, b *Basic, st *Stats) []float64 {
	dst = append(dst,
		boolF(b.Proto == packet.ProtoTCP),
		boolF(b.Proto == packet.ProtoUDP),
		float64(b.SrcPort)/65535,
		float64(b.DstPort)/65535,
		float64(b.Length),
		flag(b.Flags, packet.FlagSYN),
		flag(b.Flags, packet.FlagACK),
		flag(b.Flags, packet.FlagFIN),
		flag(b.Flags, packet.FlagRST),
		flag(b.Flags, packet.FlagPSH),
	)
	return append(dst,
		float64(st.PacketCount),
		float64(st.ByteCount),
		st.MeanPacketLen,
		st.DstPortEntropy,
		st.SrcAddrEntropy,
		float64(st.UniqueDstPorts),
		float64(st.UniqueSrcs),
		float64(st.SynCount),
		float64(st.SynAckCount),
		st.SynNoAckRatio,
		float64(st.ShortLivedConns),
		float64(st.RepeatedConnAttempts),
		float64(st.FlowCount),
		st.SeqStd,
		st.UDPFraction,
		st.MeanInterarrival,
	)
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Window is one closed aggregation window: its packets and their shared
// statistics.
type Window struct {
	// Start is the window's opening instant (aligned to the window size).
	Start sim.Time
	// Packets are the basic features of every packet captured in order.
	Packets []Basic
	// Stats is the statistical block shared by all packets.
	Stats Stats
}

// Vectors materializes one aggregated feature vector per packet.
func (w *Window) Vectors() [][]float64 {
	out := make([][]float64, len(w.Packets))
	for i := range w.Packets {
		out[i] = AppendVector(make([]float64, 0, NumFeatures()), &w.Packets[i], &w.Stats)
	}
	return out
}

// Extractor buckets a packet stream into fixed windows (1 s in the paper's
// experiments, user-configurable) and emits each closed window.
//
// The emitted *Window (including its Packets slice) is owned by the
// extractor and valid only for the duration of the OnWindow callback: the
// next window reuses the same storage. Callbacks that need to keep window
// data must copy it before returning.
type Extractor struct {
	window  sim.Time
	cur     []Basic
	curIdx  int64
	scratch statsScratch
	win     Window // reused emission buffer
	// OnWindow receives each closed, non-empty window. See the type comment
	// for the window's lifetime contract.
	OnWindow func(w *Window)

	emitted uint64
	packets uint64
}

// NewExtractor returns an extractor with the given window length
// (default 1 s).
func NewExtractor(window time.Duration, onWindow func(w *Window)) *Extractor {
	if window <= 0 {
		window = time.Second
	}
	return &Extractor{window: sim.Time(window), curIdx: -1, OnWindow: onWindow}
}

// WindowSize reports the configured window length.
func (e *Extractor) WindowSize() time.Duration { return e.window.Duration() }

// Add feeds one packet (in non-decreasing time order). Crossing a window
// boundary closes and emits the previous window.
func (e *Extractor) Add(b Basic) {
	idx := int64(b.Time / e.window)
	if idx != e.curIdx {
		e.Flush()
		e.curIdx = idx
	}
	e.cur = append(e.cur, b)
	e.packets++
}

// AddPacket dissects and feeds a captured frame; non-feature-bearing frames
// are ignored.
func (e *Extractor) AddPacket(p *packet.Packet) {
	if b, ok := FromPacket(p); ok {
		e.Add(b)
	}
}

// Flush closes the current window, emitting it if non-empty. Call once at
// end of stream. The emitted window is only valid during the OnWindow
// callback (see the Extractor contract).
func (e *Extractor) Flush() {
	if len(e.cur) == 0 {
		return
	}
	e.win = Window{
		Start:   sim.Time(e.curIdx) * e.window,
		Packets: e.cur,
		Stats:   e.scratch.compute(e.cur),
	}
	e.emitted++
	if e.OnWindow != nil {
		e.OnWindow(&e.win)
	}
	// Reclaim the packet buffer for the next window; drop the alias held by
	// the emission buffer so stale reads fail loudly rather than silently.
	e.cur = e.cur[:0]
	e.win.Packets = nil
}

// Stats reports windows emitted and packets consumed.
func (e *Extractor) Counts() (windows, packets uint64) { return e.emitted, e.packets }
