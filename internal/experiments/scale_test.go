package experiments

import (
	"runtime"
	"testing"
	"time"
)

// TestHeapBudget10kDevices is the CI memory budget: building and starting
// a 10k-device partitioned fleet must stay under 16 KiB of live heap per
// device. The measured footprint is ~5.7 KiB/device (see EXPERIMENTS.md),
// so the budget carries ~3x headroom for GC noise while still failing on
// a real regression — reintroducing eager per-device maps, RNGs, or
// telemetry series costs several KiB each and blows straight through it.
func TestHeapBudget10kDevices(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-device build is too heavy for -short")
	}
	cfg := ScaleConfig{Seed: 42}.withDefaults()
	const count = 10_000
	groups := scaleGroups(count)

	before := liveHeap()
	tb, err := cfg.buildScale(count, groups, 1, 2, false, false)
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	after := liveHeap()
	perDevice := float64(after-before) / float64(count)
	runtime.KeepAlive(tb)

	const budget = 16 * 1024
	t.Logf("heap: %.0f B/device (%d devices, %d groups, budget %d B)",
		perDevice, count, groups, budget)
	if perDevice > budget {
		t.Fatalf("heap budget exceeded: %.0f B/device > %d B/device", perDevice, budget)
	}
}

// TestBuildBudget10kDevices is the CI topology-build budget: constructing
// and starting a 10k-device partitioned fleet on a sharded core must stay
// under a 3 s wall ceiling. The staged parallel construction lands this in
// ~150 ms on the CI runner class, so the ceiling carries wide headroom for
// machine noise while still catching a real regression — reintroducing
// per-link label rendering, per-direction heap allocations, or quadratic
// priming each cost hundreds of milliseconds at this scale and compound
// to seconds at 100k.
func TestBuildBudget10kDevices(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-device build is too heavy for -short")
	}
	cfg := ScaleConfig{Seed: 42}.withDefaults()
	const count = 10_000
	groups := scaleGroups(count)

	start := time.Now()
	tb, err := cfg.buildScale(count, groups, 4, 2, false, false)
	if err != nil {
		t.Fatal(err)
	}
	tb.Start()
	elapsed := time.Since(start)
	runtime.KeepAlive(tb)

	const ceiling = 3 * time.Second
	t.Logf("build+start: %v (%d devices, %d groups, 4 shards, ceiling %v)",
		elapsed, count, groups, ceiling)
	if elapsed > ceiling {
		t.Fatalf("topology build budget exceeded: %v > %v", elapsed, ceiling)
	}
}

// TestRunScaleBenchSmoke exercises the full sweep machinery on a small
// fleet: every point must report a positive throughput headline and the
// byte-identity cross-check inside RunScaleBench must hold across the
// serial and partitioned runs.
func TestRunScaleBenchSmoke(t *testing.T) {
	pts, err := RunScaleBench(ScaleConfig{
		Seed:       7,
		Counts:     []int{300},
		Duration:   500 * time.Millisecond,
		DomainSet:  []int{1, 2},
		CoreShards: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2 (one per core-shard setting)", len(pts))
	}
	for i, pt := range pts {
		if pt.Devices != 300 || pt.Groups != scaleGroups(300) {
			t.Fatalf("point %d mislabeled: %+v", i, pt)
		}
		if pt.CoreShards != []int{1, 2}[i] {
			t.Fatalf("point %d core shards mislabeled: %+v", i, pt)
		}
		if pt.Domains != 2 || pt.Workers != 2 {
			t.Fatalf("headline should come from the partitioned run: %+v", pt)
		}
		if pt.WallMS <= 0 || pt.SerialWallMS <= 0 || pt.Events == 0 {
			t.Fatalf("missing measurements: %+v", pt)
		}
		if pt.BuildMS <= 0 || pt.SerialBuildMS <= 0 || pt.BuildDevicesPerSecond <= 0 {
			t.Fatalf("missing build measurements: %+v", pt)
		}
		if pt.HeapBytesPerDevice <= 0 {
			t.Fatalf("heap per device not measured: %+v", pt)
		}
		if pt.DevicesPerWallSecond <= 0 {
			t.Fatalf("no throughput headline: %+v", pt)
		}
		if pt.Profile == nil || pt.Profile.Virtual == nil || pt.Profile.Engine == nil {
			t.Fatalf("headline run's profile sections missing: %+v", pt.Profile)
		}
		if len(pt.Bottlenecks) == 0 {
			t.Fatal("no bottleneck findings for the scale point")
		}
	}
}
