package netstack

import (
	"bytes"
	"testing"

	"ddoshield/internal/netsim"
	"ddoshield/internal/packet"
	"ddoshield/internal/sim"
)

// lan builds n hosts joined by a switch on 10.0.0.0/24 (.1, .2, ...).
func lan(t *testing.T, n int, cfg netsim.LinkConfig) (*sim.Scheduler, []*Host) {
	t.Helper()
	s := sim.NewScheduler()
	net := netsim.New(s)
	sw := net.NewSwitch("sw0")
	subnet := packet.MustParsePrefix("10.0.0.0/24")
	hosts := make([]*Host, n)
	for i := 0; i < n; i++ {
		nic := net.NewNode("h").AddNIC()
		net.Connect(nic, sw.NewPort(), cfg)
		hosts[i] = NewHost(nic, HostConfig{
			Addr:   subnet.Host(uint32(i + 1)),
			Subnet: subnet,
			Seed:   int64(100 + i),
		})
	}
	return s, hosts
}

func TestARPResolutionAndUDPDelivery(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	a, b := hosts[0], hosts[1]
	var got []byte
	var from packet.Addr
	if _, err := b.ListenUDP(9000, func(src packet.Addr, srcPort uint16, data []byte) {
		from, got = src, data
	}); err != nil {
		t.Fatal(err)
	}
	sock, err := a.ListenUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(b.Addr(), 9000, []byte("ping"))
	s.Drain()
	if !bytes.Equal(got, []byte("ping")) {
		t.Fatalf("got %q", got)
	}
	if from != a.Addr() {
		t.Fatalf("from = %v", from)
	}
}

func TestUDPBidirectional(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	a, b := hosts[0], hosts[1]
	var reply []byte
	bsock, err := b.ListenUDP(7, nil) // echo
	if err != nil {
		t.Fatal(err)
	}
	bsock2 := bsock
	bsock.handler = func(src packet.Addr, srcPort uint16, data []byte) {
		bsock2.SendTo(src, srcPort, data)
	}
	asock, err := a.ListenUDP(0, func(src packet.Addr, srcPort uint16, data []byte) {
		reply = data
	})
	if err != nil {
		t.Fatal(err)
	}
	asock.SendTo(b.Addr(), 7, []byte("echo me"))
	s.Drain()
	if !bytes.Equal(reply, []byte("echo me")) {
		t.Fatalf("reply = %q", reply)
	}
}

func TestUDPPortConflict(t *testing.T) {
	_, hosts := lan(t, 1, netsim.LinkConfig{})
	if _, err := hosts[0].ListenUDP(53, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := hosts[0].ListenUDP(53, nil); err == nil {
		t.Fatal("double bind accepted")
	}
}

func TestUDPSocketClose(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	a, b := hosts[0], hosts[1]
	n := 0
	sockB, err := b.ListenUDP(5000, func(packet.Addr, uint16, []byte) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	sockA, _ := a.ListenUDP(0, nil)
	sockA.SendTo(b.Addr(), 5000, []byte("1"))
	s.Drain()
	sockB.Close()
	sockA.SendTo(b.Addr(), 5000, []byte("2"))
	s.Drain()
	if n != 1 {
		t.Fatalf("delivered %d, want 1 (socket closed)", n)
	}
}

func TestTCPHandshakeAndData(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	client, server := hosts[0], hosts[1]
	var rcvd []byte
	var serverConn *Conn
	if _, err := server.ListenTCP(80, 0, func(c *Conn) {
		serverConn = c
		c.OnData = func(d []byte) { rcvd = append(rcvd, d...) }
	}); err != nil {
		t.Fatal(err)
	}
	c := client.DialTCP(server.Addr(), 80)
	connected := false
	c.OnConnect = func() {
		connected = true
		c.Send([]byte("GET / HTTP/1.1\r\n\r\n"))
	}
	s.Drain()
	if !connected {
		t.Fatal("client never connected")
	}
	if c.State() != StateEstablished {
		t.Fatalf("client state = %v", c.State())
	}
	if serverConn == nil || serverConn.State() != StateEstablished {
		t.Fatal("server conn not established")
	}
	if string(rcvd) != "GET / HTTP/1.1\r\n\r\n" {
		t.Fatalf("server rcvd %q", rcvd)
	}
}

func TestTCPLargeTransferSegmentsAndWindow(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{RateBps: 10_000_000})
	client, server := hosts[0], hosts[1]
	const total = 500_000 // forces many windows' worth of segments
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i)
	}
	var rcvd []byte
	if _, err := server.ListenTCP(80, 0, func(c *Conn) {
		c.OnData = func(d []byte) { rcvd = append(rcvd, d...) }
	}); err != nil {
		t.Fatal(err)
	}
	c := client.DialTCP(server.Addr(), 80)
	c.OnConnect = func() { c.Send(payload) }
	s.Drain()
	if len(rcvd) != total {
		t.Fatalf("received %d bytes, want %d", len(rcvd), total)
	}
	if !bytes.Equal(rcvd, payload) {
		t.Fatal("payload corrupted in transfer")
	}
	sent, _, retrans := c.Stats()
	if sent != total {
		t.Fatalf("Stats sent = %d", sent)
	}
	if retrans != 0 {
		t.Fatalf("unexpected retransmits on loss-free link: %d", retrans)
	}
}

func TestTCPRetransmissionRecoversFromLoss(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{LossProb: 0.05, RNG: sim.NewRNG(3)})
	client, server := hosts[0], hosts[1]
	const total = 100_000
	payload := make([]byte, total)
	var rcvd []byte
	if _, err := server.ListenTCP(80, 0, func(c *Conn) {
		c.OnData = func(d []byte) { rcvd = append(rcvd, d...) }
	}); err != nil {
		t.Fatal(err)
	}
	c := client.DialTCP(server.Addr(), 80)
	c.OnConnect = func() { c.Send(payload) }
	if err := s.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(rcvd) != total {
		t.Fatalf("received %d/%d bytes over lossy link", len(rcvd), total)
	}
	_, _, retrans := c.Stats()
	if retrans == 0 {
		t.Fatal("expected retransmissions over 5% lossy link")
	}
}

func TestTCPGracefulCloseBothSides(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	client, server := hosts[0], hosts[1]
	var serverConn *Conn
	var serverClosed, clientClosed error
	serverSawClose := false
	if _, err := server.ListenTCP(80, 0, func(c *Conn) {
		serverConn = c
		c.OnRemoteClose = func() {
			serverSawClose = true
			c.Close() // close our side in response
		}
		c.OnClose = func(err error) { serverClosed = err }
	}); err != nil {
		t.Fatal(err)
	}
	c := client.DialTCP(server.Addr(), 80)
	closed := false
	c.OnClose = func(err error) { closed = true; clientClosed = err }
	c.OnConnect = func() {
		c.Send([]byte("bye"))
		c.Close()
	}
	if err := s.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !serverSawClose {
		t.Fatal("server never saw remote close")
	}
	if !closed {
		t.Fatal("client OnClose never fired")
	}
	if clientClosed != nil || serverClosed != nil {
		t.Fatalf("close errors: client=%v server=%v", clientClosed, serverClosed)
	}
	if serverConn.State() != StateClosed {
		t.Fatalf("server conn state = %v", serverConn.State())
	}
	// Client passes through TIME_WAIT and is eventually reaped.
	if got := c.State(); got != StateClosed && got != StateTimeWait {
		t.Fatalf("client state = %v", got)
	}
}

func TestTCPConnectionRefused(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	client, server := hosts[0], hosts[1]
	c := client.DialTCP(server.Addr(), 81) // nothing listens on 81
	var gotErr error
	c.OnClose = func(err error) { gotErr = err }
	s.Drain()
	if gotErr != ErrRefused {
		t.Fatalf("OnClose err = %v, want ErrRefused", gotErr)
	}
}

func TestTCPDialUnreachableTimesOut(t *testing.T) {
	s, hosts := lan(t, 1, netsim.LinkConfig{})
	c := hosts[0].DialTCP(packet.MustParseAddr("10.0.0.99"), 80) // no such host
	var gotErr error
	c.OnClose = func(err error) { gotErr = err }
	if err := s.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if gotErr != ErrRefused && gotErr != ErrTimeout {
		t.Fatalf("OnClose err = %v, want refused/timeout", gotErr)
	}
}

func TestTCPAbortSendsRST(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	client, server := hosts[0], hosts[1]
	var serverErr error
	if _, err := server.ListenTCP(80, 0, func(c *Conn) {
		c.OnClose = func(err error) { serverErr = err }
	}); err != nil {
		t.Fatal(err)
	}
	c := client.DialTCP(server.Addr(), 80)
	c.OnConnect = func() { c.Abort() }
	s.Drain()
	if serverErr != ErrReset {
		t.Fatalf("server OnClose err = %v, want ErrReset", serverErr)
	}
}

func TestListenerBacklogDropsSYNFlood(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	flooder, server := hosts[0], hosts[1]
	l, err := server.ListenTCP(80, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Forge 50 SYNs from distinct spoofed on-subnet sources so no RST comes
	// back (no host answers the SYN-ACK's ARP).
	var serverMAC packet.MAC
	flooder.ResolveMAC(server.Addr(), func(mac packet.MAC, ok bool) { serverMAC = mac })
	s.RunFor(sim.Second.Duration())
	for i := 0; i < 50; i++ {
		src := packet.AddrFrom4(10, 0, 0, byte(100+i))
		raw := packet.BuildTCP(flooder.MAC(), serverMAC,
			packet.IPv4{TTL: 64, ID: uint16(i), Src: src, Dst: server.Addr()},
			packet.TCP{SrcPort: uint16(40000 + i), DstPort: 80, Seq: uint32(i), Flags: packet.FlagSYN, Window: 1024},
			nil)
		flooder.SendRaw(raw)
	}
	s.RunFor(sim.Second.Duration())
	if got := l.HalfOpen(); got != 8 {
		t.Fatalf("half-open = %d, want backlog cap 8", got)
	}
	_, synDropped, _ := l.Stats()
	if synDropped != 42 {
		t.Fatalf("synDropped = %d, want 42", synDropped)
	}
	// Half-open entries expire and free the backlog.
	if err := s.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := l.HalfOpen(); got != 0 {
		t.Fatalf("half-open after expiry = %d, want 0", got)
	}
	_, _, halfExpired := l.Stats()
	if halfExpired == 0 {
		t.Fatal("no half-open expiry recorded")
	}
}

func TestBacklogPressureBlocksLegitimateClients(t *testing.T) {
	// While the backlog is saturated by spoofed SYNs, a legitimate dial is
	// dropped; after expiry, dials succeed again. This is the degradation
	// mechanism behind the paper's DDoS scenarios.
	s, hosts := lan(t, 3, netsim.LinkConfig{})
	flooder, server, client := hosts[0], hosts[1], hosts[2]
	l, err := server.ListenTCP(80, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var serverMAC packet.MAC
	flooder.ResolveMAC(server.Addr(), func(mac packet.MAC, ok bool) { serverMAC = mac })
	s.RunFor(sim.Second.Duration())
	for i := 0; i < 4; i++ {
		src := packet.AddrFrom4(10, 0, 0, byte(200+i))
		flooder.SendRaw(packet.BuildTCP(flooder.MAC(), serverMAC,
			packet.IPv4{TTL: 64, Src: src, Dst: server.Addr()},
			packet.TCP{SrcPort: 1000, DstPort: 80, Seq: 1, Flags: packet.FlagSYN, Window: 1024}, nil))
	}
	s.RunFor((100 * sim.Millisecond).Duration())
	if l.HalfOpen() != 4 {
		t.Fatalf("backlog not saturated: %d", l.HalfOpen())
	}
	c := client.DialTCP(server.Addr(), 80)
	connected := false
	c.OnConnect = func() { connected = true }
	// The client's SYN retransmits will eventually land after the backlog
	// clears (~5 s), so the connection completes late but not immediately.
	s.RunFor(sim.Second.Duration())
	if connected {
		t.Fatal("client connected while backlog saturated")
	}
	if err := s.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !connected {
		t.Fatal("client never connected after backlog cleared")
	}
}

func TestRSTSentForClosedPort(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	prober, target := hosts[0], hosts[1]
	// Observe frames arriving back at the prober.
	var sawRST bool
	probeNIC := prober.NIC()
	orig := probeNIC
	_ = orig
	// Wrap: tap the link by re-setting handler through a shim is intrusive;
	// instead dial and inspect the error path (RST -> ErrRefused), plus
	// verify a listener-less host resets forged probes via conn teardown.
	c := prober.DialTCP(target.Addr(), 23)
	var gotErr error
	c.OnClose = func(err error) { gotErr = err; sawRST = true }
	s.Drain()
	if !sawRST || gotErr != ErrRefused {
		t.Fatalf("probe to closed port: err=%v", gotErr)
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	_, hosts := lan(t, 2, netsim.LinkConfig{})
	a := hosts[0]
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		c := a.DialTCP(hosts[1].Addr(), 80)
		if seen[c.LocalPort()] {
			t.Fatalf("ephemeral port %d reused", c.LocalPort())
		}
		seen[c.LocalPort()] = true
	}
}

func TestSendAfterCloseDiscarded(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	client, server := hosts[0], hosts[1]
	var rcvd int
	if _, err := server.ListenTCP(80, 0, func(c *Conn) {
		c.OnData = func(d []byte) { rcvd += len(d) }
	}); err != nil {
		t.Fatal(err)
	}
	c := client.DialTCP(server.Addr(), 80)
	c.OnConnect = func() {
		c.Send([]byte("ok"))
		c.Close()
		c.Send([]byte("dropped"))
	}
	if err := s.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if rcvd != 2 {
		t.Fatalf("server received %d bytes, want 2", rcvd)
	}
}

func TestOffSubnetWithoutGatewayUnroutable(t *testing.T) {
	s, hosts := lan(t, 1, netsim.LinkConfig{})
	sock, err := hosts[0].ListenUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(packet.MustParseAddr("192.168.9.9"), 53, []byte("x")) // must not panic
	s.Drain()
}

func TestHostStatsCount(t *testing.T) {
	s, hosts := lan(t, 2, netsim.LinkConfig{})
	a, b := hosts[0], hosts[1]
	if _, err := b.ListenUDP(1234, func(packet.Addr, uint16, []byte) {}); err != nil {
		t.Fatal(err)
	}
	sock, _ := a.ListenUDP(0, nil)
	sock.SendTo(b.Addr(), 1234, []byte("hello"))
	s.Drain()
	rxIPv4, rxARP, _, _, _ := b.Stats()
	if rxIPv4 != 1 {
		t.Fatalf("b rxIPv4 = %d, want 1", rxIPv4)
	}
	if rxARP == 0 {
		t.Fatal("b saw no ARP despite resolution")
	}
}

func TestResolveMACFailure(t *testing.T) {
	s, hosts := lan(t, 1, netsim.LinkConfig{})
	var ok *bool
	hosts[0].ResolveMAC(packet.MustParseAddr("10.0.0.200"), func(mac packet.MAC, o bool) {
		if ok == nil { // take the first (failure) report
			ok = &o
		}
	})
	if err := s.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if ok == nil || *ok {
		t.Fatal("ResolveMAC to absent host should fail")
	}
}

func TestConnStateString(t *testing.T) {
	if StateEstablished.String() != "ESTABLISHED" {
		t.Fatal("state naming broken")
	}
	if ConnState(99).String() == "" {
		t.Fatal("unknown state renders empty")
	}
}
