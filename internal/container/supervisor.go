package container

import (
	"fmt"
	"time"

	"ddoshield/internal/sim"
	"ddoshield/internal/telemetry"
)

// RestartPolicy decides whether a supervisor restarts an exited container —
// the `docker run --restart` analog.
type RestartPolicy int

// Restart policies.
const (
	// RestartNever leaves exited containers down.
	RestartNever RestartPolicy = iota
	// RestartOnFailure restarts containers that crashed (Kill) or went
	// unhealthy, but not cleanly stopped ones.
	RestartOnFailure
	// RestartAlways restarts any supervised exit. Like Docker's `always`,
	// a manual Stop still suspends restarts until the next manual Start.
	RestartAlways
)

// String renders the policy in `docker ps`-style notation.
func (p RestartPolicy) String() string {
	switch p {
	case RestartNever:
		return "never"
	case RestartOnFailure:
		return "on-failure"
	case RestartAlways:
		return "always"
	}
	return fmt.Sprintf("RestartPolicy(%d)", int(p))
}

// SupervisorConfig tunes restart and health-probe behaviour.
type SupervisorConfig struct {
	// Policy decides which exits trigger a restart.
	Policy RestartPolicy
	// Backoff is the delay before the first restart (default 500 ms);
	// BackoffFactor multiplies it after each consecutive failure (default
	// 2), capped at MaxBackoff (default 30 s).
	Backoff       time.Duration
	BackoffFactor float64
	MaxBackoff    time.Duration
	// ResetAfter resets the backoff ladder once a container has stayed up
	// this long (default 60 s).
	ResetAfter time.Duration
	// MaxRestarts caps total supervised restarts; once exceeded the
	// supervisor gives up and leaves the container down. 0 = unlimited.
	MaxRestarts int
	// Delay, when set, overrides the exponential ladder entirely: it is
	// called with the supervised-restart count and returns the downtime.
	// The testbed's churn model supplies exponentially distributed
	// reboot outages through this hook.
	Delay func(restarts int) time.Duration
	// Probe is the periodic health check (nil means liveness-only: a
	// running container is healthy). Returning false counts one failure.
	Probe func(c *Container) bool
	// ProbeInterval enables periodic probing (0 disables probes).
	ProbeInterval time.Duration
	// UnhealthyAfter is the number of consecutive probe failures before
	// the container is declared unhealthy (default 3). An unhealthy
	// container is killed and handled by the restart policy.
	UnhealthyAfter int
	// OnRestart is invoked after every supervised restart completes.
	OnRestart func(c *Container)
}

func (cfg SupervisorConfig) withDefaults() SupervisorConfig {
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.BackoffFactor < 1 {
		cfg.BackoffFactor = 2
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.ResetAfter <= 0 {
		cfg.ResetAfter = 60 * time.Second
	}
	if cfg.UnhealthyAfter <= 0 {
		cfg.UnhealthyAfter = 3
	}
	return cfg
}

// Supervisor watches one container and applies a restart policy with
// exponential backoff plus optional periodic health probes — the
// docker-compose `restart:` + `healthcheck:` analog the fault-injection
// experiments lean on. All of its activity runs on the simulation
// scheduler, so supervised runs stay deterministic.
type Supervisor struct {
	sched *sim.Scheduler
	c     *Container
	cfg   SupervisorConfig

	attempt    int // consecutive-failure streak (backoff ladder rung)
	restarts   int // total supervised restarts performed
	gaveUp     bool
	suspended  bool // manual Stop suspends supervision until manual Start
	restarting bool // true while the supervisor itself calls Start
	pending    sim.Event

	probeTicker     *sim.Ticker
	probeFails      int
	unhealthy       bool
	unhealthyEvents uint64
}

// Supervise attaches a supervisor to a container, replacing any previous
// one. Health probing starts immediately when configured.
func (r *Runtime) Supervise(c *Container, cfg SupervisorConfig) *Supervisor {
	if c.sup != nil {
		c.sup.Detach()
	}
	s := &Supervisor{sched: c.node.Scheduler(), c: c, cfg: cfg.withDefaults()}
	c.sup = s
	if s.cfg.ProbeInterval > 0 {
		s.probeTicker = s.sched.Every(s.cfg.ProbeInterval, s.probe)
	}
	return s
}

// Container returns the supervised container.
func (s *Supervisor) Container() *Container { return s.c }

// Policy reports the configured restart policy.
func (s *Supervisor) Policy() RestartPolicy { return s.cfg.Policy }

// Restarts reports supervised restarts performed so far.
func (s *Supervisor) Restarts() int { return s.restarts }

// GaveUp reports whether the MaxRestarts cap was exhausted.
func (s *Supervisor) GaveUp() bool { return s.gaveUp }

// Unhealthy reports whether the container is currently marked unhealthy.
func (s *Supervisor) Unhealthy() bool { return s.unhealthy }

// UnhealthyEvents reports how many times probes declared the container
// unhealthy.
func (s *Supervisor) UnhealthyEvents() uint64 { return s.unhealthyEvents }

// RestartPending reports whether a supervised restart is scheduled.
func (s *Supervisor) RestartPending() bool { return s.pending.Pending() }

// Detach stops probing and cancels any pending restart, leaving the
// container unsupervised.
func (s *Supervisor) Detach() {
	s.cancelPending()
	if s.probeTicker != nil {
		s.probeTicker.Stop()
		s.probeTicker = nil
	}
	if s.c.sup == s {
		s.c.sup = nil
	}
}

func (s *Supervisor) cancelPending() {
	s.pending.Cancel()
	s.pending = sim.Event{}
}

// emit records a supervision trace event in the network's flight recorder,
// stamped with the supervised container's domain clock.
func (s *Supervisor) emit(event string, value int64) {
	net := s.c.runtime.net
	net.Recorder().Emit(s.sched.Now(), telemetry.CatSupervisor, event, s.c.name, value)
}

// noteExit handles a crash exit (Kill or unhealthy-kill).
func (s *Supervisor) noteExit() {
	if s.suspended || s.gaveUp || s.cfg.Policy == RestartNever {
		return
	}
	// A long healthy run resets the backoff ladder.
	if up := s.c.stopped - s.c.started; up.Duration() >= s.cfg.ResetAfter {
		s.attempt = 0
	}
	s.scheduleRestart()
}

// noteManualStop records operator intent to keep the container down: any
// pending supervised restart is cancelled and supervision suspends until
// the next manual Start. This is the guard that keeps a churn or fault
// callback from silently resurrecting a deliberately stopped container.
func (s *Supervisor) noteManualStop() {
	s.suspended = true
	s.cancelPending()
	s.probeFails = 0
}

// noteManualStart re-arms supervision with a fresh backoff ladder.
func (s *Supervisor) noteManualStart() {
	s.suspended = false
	s.attempt = 0
	s.probeFails = 0
	s.unhealthy = false
}

func (s *Supervisor) scheduleRestart() {
	if s.pending.Pending() {
		return
	}
	if s.cfg.MaxRestarts > 0 && s.restarts >= s.cfg.MaxRestarts {
		s.gaveUp = true
		s.emit("gave-up", int64(s.restarts))
		return
	}
	s.attempt++
	var delay time.Duration
	if s.cfg.Delay != nil {
		delay = s.cfg.Delay(s.restarts)
	} else {
		delay = s.cfg.Backoff
		for i := 1; i < s.attempt; i++ {
			delay = time.Duration(float64(delay) * s.cfg.BackoffFactor)
			if delay >= s.cfg.MaxBackoff {
				delay = s.cfg.MaxBackoff
				break
			}
		}
	}
	s.pending = s.sched.After(delay, func() {
		s.pending = sim.Event{}
		if s.suspended || s.c.State() == StateRunning {
			return
		}
		s.restarting = true
		s.c.Start()
		s.restarting = false
		s.restarts++
		s.emit("restart", int64(s.restarts))
		s.unhealthy = false
		s.probeFails = 0
		if s.cfg.OnRestart != nil {
			s.cfg.OnRestart(s.c)
		}
	})
}

// probe runs one periodic health check.
func (s *Supervisor) probe() {
	if s.suspended || s.gaveUp || s.restarting || s.c.State() != StateRunning {
		return
	}
	healthy := s.cfg.Probe == nil || s.cfg.Probe(s.c)
	if healthy {
		s.probeFails = 0
		s.unhealthy = false
		return
	}
	s.probeFails++
	if s.probeFails < s.cfg.UnhealthyAfter {
		return
	}
	s.probeFails = 0
	s.unhealthy = true
	s.unhealthyEvents++
	s.emit("unhealthy", int64(s.unhealthyEvents))
	if s.cfg.Policy == RestartNever {
		return
	}
	// Kill routes back through noteExit, which schedules the restart.
	s.c.Kill()
}
